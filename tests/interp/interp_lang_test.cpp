// interp_lang_test.cpp — concurrency constructs of the embedded
// language: co-expressions, pipes, and the paper's programs end to end.
#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace congen::interp {
namespace {

std::vector<std::int64_t> evalInts(Interpreter& interp, const std::string& src) {
  std::vector<std::int64_t> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.requireInt64("test"));
  return out;
}

TEST(CoExprLang, CreateActivatePromote) {
  Interpreter interp;
  interp.evalOne("c := <> (1 to 3)");
  EXPECT_EQ(interp.evalOne("@c")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("@c")->smallInt(), 2);
  EXPECT_EQ(evalInts(interp, "!c"), (std::vector<std::int64_t>{3})) << "! drains the rest";
  EXPECT_TRUE(interp.evalAll("@c").empty()) << "exhausted until refreshed";
  interp.evalOne("c2 := ^c");
  EXPECT_EQ(interp.evalOne("@c2")->smallInt(), 1) << "^c restarts";
}

TEST(CoExprLang, CreateKeywordAlias) {
  Interpreter interp;
  interp.evalOne("c := create (10 | 20)");
  EXPECT_EQ(interp.evalOne("@c")->smallInt(), 10);
}

TEST(CoExprLang, EnvironmentShadowing) {
  Interpreter interp;
  interp.load(R"(
    def makeCo() {
      local x, c;
      x := 1;
      c := |<> (x + 100);
      x := 2;                 # mutate AFTER creation
      return @c;
    }
    def makeShared() {
      local x, c;
      x := 1;
      c := <> (x + 100);      # <> does NOT shadow
      x := 2;
      return @c;
    }
  )");
  EXPECT_EQ(interp.evalOne("makeCo()")->smallInt(), 101)
      << "|<> copies the local environment at creation";
  EXPECT_EQ(interp.evalOne("makeShared()")->smallInt(), 102)
      << "<> shares the environment";
}

TEST(CoExprLang, RefreshRecopiesEnvironment) {
  Interpreter interp;
  interp.load(R"(
    def run() {
      local x, c, a, b;
      x := 5;
      c := |<> x;
      a := @c;
      x := 9;
      b := @(^c);
      return a * 100 + b;
    }
  )");
  EXPECT_EQ(interp.evalOne("run()")->smallInt(), 509);
}

TEST(PipeLang, BasicStreaming) {
  Interpreter interp;
  EXPECT_EQ(evalInts(interp, "! |> (1 to 50)"),
            [] {
              std::vector<std::int64_t> v;
              for (int i = 1; i <= 50; ++i) v.push_back(i);
              return v;
            }());
}

TEST(PipeLang, PipelineComputesInParallelThreads) {
  Interpreter interp;
  interp.load("def sq(x) { return x * x; }");
  EXPECT_EQ(evalInts(interp, "! |> sq( ! |> (1 to 5) )"),
            (std::vector<std::int64_t>{1, 4, 9, 16, 25}))
      << "two chained pipe stages";
}

TEST(PipeLang, SectionIIIPipelineExpression) {
  Interpreter interp;
  interp.load(R"(
    def factorial(n) {
      local acc, i;
      acc := 1;
      every i := 1 to n do acc *:= i;
      return acc;
    }
  )");
  // x * ! |> factorial(! |> isqrt(y))
  EXPECT_EQ(evalInts(interp, "2 * ! |> factorial( ! |> isqrt(16 | 25) )"),
            (std::vector<std::int64_t>{48, 240}));
}

TEST(PipeLang, PipeOverGeneratorFunction) {
  Interpreter interp;
  interp.load("def odds(n) { local i; every i := 1 to n do if i % 2 == 1 then suspend i; }");
  EXPECT_EQ(evalInts(interp, "! |> odds(9)"), (std::vector<std::int64_t>{1, 3, 5, 7, 9}));
}

TEST(PipeLang, PipeShadowsLocals) {
  Interpreter interp;
  interp.load(R"(
    def run() {
      local x, p, total, tasks;
      tasks := [];
      every x := 1 to 3 do put(tasks, |> (x * 10));
      total := 0;
      every p := !tasks do total +:= @p;
      return total;
    }
  )");
  // Each pipe captured its own copy of x: 10 + 20 + 30.
  EXPECT_EQ(interp.evalOne("run()")->smallInt(), 60);
}

TEST(Fig3Program, WordCountPipelineMatchesSequential) {
  Interpreter interp;
  auto lines = ListImpl::create();
  lines->put(Value::string("alpha beta gamma"));
  lines->put(Value::string("delta epsilon"));
  interp.defineGlobal("lines", Value::list(lines));
  interp.load(R"(
    def readLines() { suspend ! lines; }
    def splitWords(line) { return split(line); }
    def wordToNumber(word) { return integer(word, 36); }
    def hashNumber(num) { return sqrt(num); }
    def runSequential() {
      local total, h;
      total := 0.0;
      every h := hashNumber(wordToNumber(!splitWords(readLines()))) do total +:= h;
      return total;
    }
    def runPipeline() {
      local total, h;
      total := 0.0;
      every h := hashNumber( ! (|> wordToNumber( ! splitWords(readLines()) )) ) do total +:= h;
      return total;
    }
  )");
  const double sequential = interp.evalOne("runSequential()")->real();
  const double pipelined = interp.evalOne("runPipeline()")->real();
  EXPECT_GT(sequential, 0.0);
  EXPECT_DOUBLE_EQ(sequential, pipelined)
      << "Fig. 3: the pipeline computes exactly the sequential hash";
}

TEST(Fig4Program, MapReduceFromConcurrentGenerators) {
  Interpreter interp;
  interp.load(R"(
    chunkSize := 3;
    def chunk(e) {
      local c;
      c := [];
      while put(c, @e) do {
        if (*c >= chunkSize) then { suspend c; c := []; }
      };
      if (*c > 0) then { return c; };
    }
    def mapReduce(f, s, r, i) {
      local c, t, tasks;
      tasks := [];
      every (c := chunk(<> s())) do {
        t := |> { local x; x := i; every (x := r(x, f(!c))); x };
        put(tasks, t);
      };
      suspend ! (! tasks);
    }
    def source() { suspend 1 to 10; }
    def square(x) { return x * x; }
    def add(a, b) { return a + b; }
  )");
  EXPECT_EQ(evalInts(interp, "mapReduce(square, source, add, 0)"),
            (std::vector<std::int64_t>{14, 77, 194, 100}))
      << "per-chunk sums, in order (Fig. 4)";
}

TEST(Fig4Program, ChunkGeneratorAlone) {
  Interpreter interp;
  interp.load(R"(
    chunkSize := 4;
    def chunk(e) {
      local c;
      c := [];
      while put(c, @e) do {
        if (*c >= chunkSize) then { suspend c; c := []; }
      };
      if (*c > 0) then { return c; };
    }
  )");
  auto chunks = interp.evalAll("chunk(<> (1 to 9))");
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].list()->size(), 4);
  EXPECT_EQ(chunks[1].list()->size(), 4);
  EXPECT_EQ(chunks[2].list()->size(), 1);
}

TEST(ThrottleLang, BoundedPipeStillDelivers) {
  Interpreter interp(Interpreter::Options{.pipeCapacity = 2, .normalize = true});
  std::vector<std::int64_t> expected;
  for (int i = 1; i <= 200; ++i) expected.push_back(i);
  EXPECT_EQ(evalInts(interp, "! |> (1 to 200)"), expected);
}

TEST(InterleaveLang, ExplicitSteppingMergesStreams) {
  Interpreter interp;
  interp.load(R"(
    def merge(n) {
      local a, b, i, out;
      a := <> (1 to n by 2);
      b := <> (2 to n by 2);
      out := [];
      every i := 1 to n / 2 do { put(out, @a); put(out, @b); };
      return out;
    }
  )");
  auto out = interp.evalOne("merge(8)");
  ASSERT_TRUE(out && out->isList());
  std::vector<std::int64_t> got;
  for (const auto& v : out->list()->elements()) got.push_back(v.smallInt());
  EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(ErrorLang, ErrorCreditConvertsErrorToFailure) {
  Interpreter interp;
  // Fresh thread-local state can carry over from other tests in this
  // process; start clean.
  interp.evalOne("errorclear()");
  interp.evalOne("&error := 0");
  EXPECT_THROW(interp.evalAll("1 / 0"), IconError) << "no credit: the error propagates";
  interp.evalOne("&error := 1");
  EXPECT_TRUE(interp.evalAll("1 / 0").empty()) << "credit converts the error to failure";
  EXPECT_EQ(interp.evalOne("&error")->smallInt(), 0) << "conversion spends the credit";
  EXPECT_THROW(interp.evalAll("1 / 0"), IconError) << "credit exhausted";
}

TEST(ErrorLang, ErrorNumberAndValueReportLastConversion) {
  Interpreter interp;
  interp.evalOne("errorclear()");
  interp.evalOne("&error := 2");
  EXPECT_TRUE(interp.evalAll("1 / 0").empty());
  EXPECT_EQ(interp.evalOne("&errornumber")->smallInt(), 201);
  EXPECT_EQ(interp.evalOne("&errorvalue")->toDisplayString(), "division by zero");
  interp.evalOne("errorclear()");
  EXPECT_TRUE(interp.evalAll("&errornumber").empty()) << "cleared: the keyword fails";
  EXPECT_TRUE(interp.evalAll("&errorvalue").empty());
  EXPECT_EQ(interp.evalOne("&error")->smallInt(), 1) << "errorclear leaves the credit";
  interp.evalOne("&error := 0");
}

TEST(ErrorLang, ConvertedErrorFailsJustTheExpression) {
  Interpreter interp;
  interp.evalOne("errorclear()");
  interp.evalOne("&error := 1");
  // Goal-directed: the failing division makes that alternative fail;
  // evaluation continues with the next one.
  EXPECT_EQ(evalInts(interp, "(1 / 0) | 7"), (std::vector<std::int64_t>{7}));
  interp.evalOne("&error := 0");
}

TEST(TimeoutLang, GenerousDeadlineYieldsTheValue) {
  Interpreter interp;
  interp.evalOne("c := |> (41 + 1)");
  EXPECT_EQ(interp.evalOne("timeout(c, 10000)")->smallInt(), 42);
}

TEST(TimeoutLang, PlainCoExpressionIgnoresDeadline) {
  Interpreter interp;
  interp.evalOne("c := <> (1 to 2)");
  EXPECT_EQ(interp.evalOne("timeout(c, 0)")->smallInt(), 1) << "base class never waits";
}

TEST(TimeoutLang, NonCoExpressionErrors) {
  Interpreter interp;
  EXPECT_THROW(interp.evalAll("timeout(3, 10)"), IconError);
}

}  // namespace
}  // namespace congen::interp

// interp_extended_test.cpp — extended Icon/Unicon features: records,
// case, slices, null tests, globals, and the string-analysis builtins.
#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"

namespace congen::interp {
namespace {

std::vector<std::int64_t> evalInts(Interpreter& interp, const std::string& src) {
  std::vector<std::int64_t> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.requireInt64("test"));
  return out;
}

TEST(Records, DeclarationAndConstruction) {
  Interpreter interp;
  interp.load("record point(x, y)");
  interp.evalOne("p := point(3, 4)");
  EXPECT_EQ(interp.evalOne("type(p)")->str(), "point") << "type() is the record name";
  EXPECT_EQ(interp.evalOne("p.x")->smallInt(), 3);
  EXPECT_EQ(interp.evalOne("p.y")->smallInt(), 4);
  EXPECT_EQ(interp.evalOne("*p")->smallInt(), 2);
}

TEST(Records, MissingConstructorArgsAreNull) {
  Interpreter interp;
  interp.load("record pair(a, b)");
  interp.evalOne("p := pair(1)");
  EXPECT_EQ(interp.evalOne("type(p.b)")->str(), "null");
}

TEST(Records, FieldsAreAssignable) {
  Interpreter interp;
  interp.load("record point(x, y)");
  interp.evalOne("p := point(1, 2)");
  interp.evalOne("p.x := 10");
  interp.evalOne("p.y +:= 5");
  EXPECT_EQ(interp.evalOne("p.x")->smallInt(), 10);
  EXPECT_EQ(interp.evalOne("p.y")->smallInt(), 7);
}

TEST(Records, PositionalSubscriptAndPromotion) {
  Interpreter interp;
  interp.load("record point(x, y)");
  interp.evalOne("p := point(8, 9)");
  EXPECT_EQ(interp.evalOne("p[1]")->smallInt(), 8);
  EXPECT_EQ(interp.evalOne("p[-1]")->smallInt(), 9);
  interp.evalOne("p[2] := 99");
  EXPECT_EQ(interp.evalOne("p.y")->smallInt(), 99);
  EXPECT_EQ(evalInts(interp, "!p"), (std::vector<std::int64_t>{8, 99})) << "! generates fields";
}

TEST(Records, UnknownFieldErrors) {
  Interpreter interp;
  interp.load("record point(x, y)");
  interp.evalOne("p := point(1, 2)");
  EXPECT_THROW(interp.evalAll("p.z"), IconError);
  EXPECT_TRUE(interp.evalAll("p[3]").empty()) << "positional out-of-range fails";
}

TEST(Records, ReferenceSemanticsAndImage) {
  Interpreter interp;
  interp.load(R"(
    record point(x, y)
    def mutate(q) { q.x := 42; return q; }
  )");
  interp.evalOne("p := point(1, 2)");
  interp.evalOne("mutate(p)");
  EXPECT_EQ(interp.evalOne("p.x")->smallInt(), 42) << "records pass by reference";
  EXPECT_EQ(interp.evalOne("image(p)")->str(), "record point(42,2)");
}

TEST(Records, UsedInsidePipes) {
  Interpreter interp;
  interp.load(R"(
    record item(id, weight)
    def stream(n) { local i; every i := 1 to n do suspend item(i, i * 10); }
  )");
  EXPECT_EQ(evalInts(interp, "(! |> stream(4)).weight"),
            (std::vector<std::int64_t>{10, 20, 30, 40}))
      << "records cross the pipe's thread boundary";
}

TEST(CaseExpr, SelectsFirstEquivalentBranch) {
  Interpreter interp;
  interp.load(R"(
    def describe(x) {
      case x of {
        0: return "zero";
        1 | 2 | 3: return "small";
        "many": return "word";
        default: return "other";
      }
    }
  )");
  EXPECT_EQ(interp.evalOne("describe(0)")->str(), "zero");
  EXPECT_EQ(interp.evalOne("describe(2)")->str(), "small") << "alternation in branch values";
  EXPECT_EQ(interp.evalOne("describe(\"many\")")->str(), "word");
  EXPECT_EQ(interp.evalOne("describe(99)")->str(), "other");
  EXPECT_EQ(interp.evalOne("describe(1.0)")->str(), "other") << "=== distinguishes 1 from 1.0";
}

TEST(CaseExpr, NoMatchNoDefaultFails) {
  Interpreter interp;
  interp.load("def f(x) { case x of { 1: return 10; } }");
  EXPECT_EQ(interp.evalOne("f(1)")->smallInt(), 10);
  EXPECT_TRUE(interp.evalAll("f(2)").empty());
}

TEST(CaseExpr, BranchDelegatesGeneration) {
  Interpreter interp;
  interp.load("def g(x) { case x of { 1: suspend 10 to 12; } }");
  EXPECT_EQ(evalInts(interp, "g(1)"), (std::vector<std::int64_t>{10, 11, 12}));
}

TEST(Slices, StringsUsePositions) {
  Interpreter interp;
  EXPECT_EQ(interp.evalOne("\"hello\"[2:4]")->str(), "el") << "positions 2..4 = chars 2..3";
  EXPECT_EQ(interp.evalOne("\"hello\"[1:6]")->str(), "hello");
  EXPECT_EQ(interp.evalOne("\"hello\"[2:2]")->str(), "") << "empty slice";
  EXPECT_EQ(interp.evalOne("\"hello\"[4:2]")->str(), "el") << "reversed bounds swap";
  EXPECT_EQ(interp.evalOne("\"hello\"[2:0]")->str(), "ello") << "0 = position past the end";
  EXPECT_EQ(interp.evalOne("\"hello\"[-3:0]")->str(), "llo") << "negative from the right";
  EXPECT_TRUE(interp.evalAll("\"hi\"[1:9]").empty()) << "out of range fails";
}

TEST(Slices, ListsCopySections) {
  Interpreter interp;
  interp.evalOne("l := [1, 2, 3, 4, 5]");
  EXPECT_EQ(interp.evalOne("image(l[2:4])")->str(), "[2,3]");
  interp.evalOne("m := l[1:3]");
  interp.evalOne("m[1] := 99");
  EXPECT_EQ(interp.evalOne("l[1]")->smallInt(), 1) << "slices are copies";
}

TEST(NullTests, BackslashAndSlash) {
  Interpreter interp;
  interp.evalOne("x := 5");
  EXPECT_EQ(interp.evalOne("\\x")->smallInt(), 5) << "\\x succeeds for non-null";
  EXPECT_TRUE(interp.evalAll("/x").empty()) << "/x fails for non-null";
  interp.evalOne("y := &null");
  EXPECT_TRUE(interp.evalAll("\\y").empty());
  EXPECT_EQ(interp.evalAll("/y").size(), 1u);
  // The classic default idiom: /x := value assigns only when null.
  interp.evalOne("/y := 7");
  EXPECT_EQ(interp.evalOne("y")->smallInt(), 7);
  interp.evalOne("/y := 100");
  EXPECT_EQ(interp.evalOne("y")->smallInt(), 7) << "already non-null: assignment fails silently";
}

TEST(Globals, ExplicitDeclaration) {
  Interpreter interp;
  interp.load(R"(
    global counter
    def bump() { /counter := 0; counter +:= 1; return counter; }
  )");
  EXPECT_EQ(interp.evalOne("bump()")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("bump()")->smallInt(), 2) << "global persists across calls";
  EXPECT_EQ(interp.evalOne("counter")->smallInt(), 2);
}

TEST(StringBuiltins, JustifyAndReplicate) {
  Interpreter interp;
  EXPECT_EQ(interp.evalOne("left(\"ab\", 5)")->str(), "ab   ");
  EXPECT_EQ(interp.evalOne("left(\"abcdef\", 3)")->str(), "abc");
  EXPECT_EQ(interp.evalOne("right(\"ab\", 5, \".\")")->str(), "...ab");
  EXPECT_EQ(interp.evalOne("repl(\"ab\", 3)")->str(), "ababab");
  EXPECT_EQ(interp.evalOne("repl(\"x\", 0)")->str(), "");
}

TEST(StringBuiltins, CharOrd) {
  Interpreter interp;
  EXPECT_EQ(interp.evalOne("ord(\"A\")")->smallInt(), 65);
  EXPECT_EQ(interp.evalOne("char(97)")->str(), "a");
  EXPECT_EQ(interp.evalOne("char(ord(\"z\"))")->str(), "z");
  EXPECT_THROW(interp.evalAll("ord(\"ab\")"), IconError);
}

TEST(StringBuiltins, ScanningPrimitives) {
  Interpreter interp;
  EXPECT_EQ(evalInts(interp, "upto(\"aeiou\", \"banana\")"),
            (std::vector<std::int64_t>{2, 4, 6})) << "vowel positions";
  EXPECT_EQ(interp.evalOne("any(\"ab\", \"banana\")")->smallInt(), 2);
  EXPECT_TRUE(interp.evalAll("any(\"xyz\", \"banana\")").empty());
  EXPECT_EQ(interp.evalOne("many(\"ba\", \"baaab!\")")->smallInt(), 6)
      << "longest run of b/a ends before position 6... at 6";
  EXPECT_EQ(interp.evalOne("match(\"ban\", \"banana\")")->smallInt(), 4);
  EXPECT_TRUE(interp.evalAll("match(\"nan\", \"banana\")").empty());
  EXPECT_EQ(interp.evalOne("match(\"nan\", \"banana\", 3)")->smallInt(), 6);
}

TEST(HostInterop, RecordsVisibleFromHost) {
  Interpreter interp;
  interp.load("record point(x, y)");
  interp.evalOne("p := point(3, 4)");
  auto p = interp.global("p");
  ASSERT_TRUE(p && p->isRecord());
  EXPECT_EQ(p->record()->field("x")->smallInt(), 3);
  p->record()->assignField("y", Value::integer(11));
  EXPECT_EQ(interp.evalOne("p.y")->smallInt(), 11);
}

}  // namespace
}  // namespace congen::interp

// metamorphic_test.cpp — algebraic laws of goal-directed evaluation,
// checked over randomly generated expressions. These are the invariants
// the paper's Section II decompositions rely on (e.g. that function
// application distributes over the iterator product of its argument
// sequences), so they pin the kernel against whole classes of
// composition bugs rather than single cases.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "interp/interpreter.hpp"

namespace congen::interp {
namespace {

/// Random *finite, pure* integer generator expressions: literals,
/// ranges, alternations, limited products, arithmetic. Purity matters —
/// the laws below re-evaluate subexpressions.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  std::string gen(int depth = 0) {
    const int pick = depth >= 3 ? static_cast<int>(rng_() % 2) : static_cast<int>(rng_() % 6);
    std::ostringstream os;
    switch (pick) {
      case 0: os << literal(); break;
      case 1: os << "(" << literal() << " to " << literal() << ")"; break;
      case 2: os << "(" << gen(depth + 1) << " | " << gen(depth + 1) << ")"; break;
      case 3: os << "(" << gen(depth + 1) << " + " << gen(depth + 1) << ")"; break;
      case 4: os << "(" << gen(depth + 1) << " & " << gen(depth + 1) << ")"; break;
      case 5: os << "(" << gen(depth + 1) << " \\ " << (1 + rng_() % 4) << ")"; break;
    }
    return os.str();
  }

  std::string literal() { return std::to_string(static_cast<int>(rng_() % 7) - 2); }

 private:
  std::mt19937_64 rng_;
};

std::vector<std::string> images(Interpreter& interp, const std::string& src) {
  std::vector<std::string> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.image());
  return out;
}

class MetamorphicLaws : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Interpreter interp_;
};

TEST_P(MetamorphicLaws, AlternationConcatenatesSequences) {
  ExprGen g(GetParam());
  for (int i = 0; i < 20; ++i) {
    const std::string a = g.gen(), b = g.gen();
    auto lhs = images(interp_, "(" + a + ") | (" + b + ")");
    auto expect = images(interp_, a);
    for (auto& v : images(interp_, b)) expect.push_back(std::move(v));
    EXPECT_EQ(lhs, expect) << a << " | " << b;
  }
}

TEST_P(MetamorphicLaws, AlternationIsAssociative) {
  ExprGen g(GetParam() ^ 0xA550C);
  for (int i = 0; i < 20; ++i) {
    const std::string a = g.gen(), b = g.gen(), c = g.gen();
    EXPECT_EQ(images(interp_, "((" + a + ") | (" + b + ")) | (" + c + ")"),
              images(interp_, "(" + a + ") | ((" + b + ") | (" + c + "))"));
  }
}

TEST_P(MetamorphicLaws, ProductCountIsProductOfCounts) {
  // For independent operands, |e1 & e2| = |e1| * |e2| and the results
  // are |e1| repetitions of e2's sequence (Section II's semantics).
  ExprGen g(GetParam() ^ 0x90D);
  for (int i = 0; i < 20; ++i) {
    const std::string a = g.gen(), b = g.gen();
    const auto as = images(interp_, a);
    const auto bs = images(interp_, b);
    const auto prod = images(interp_, "(" + a + ") & (" + b + ")");
    ASSERT_EQ(prod.size(), as.size() * bs.size()) << a << " & " << b;
    std::vector<std::string> expect;
    for (std::size_t k = 0; k < as.size(); ++k) {
      for (const auto& v : bs) expect.push_back(v);
    }
    EXPECT_EQ(prod, expect);
  }
}

TEST_P(MetamorphicLaws, LimitTruncates) {
  ExprGen g(GetParam() ^ 0x11117);
  for (int i = 0; i < 20; ++i) {
    const std::string a = g.gen();
    const auto full = images(interp_, a);
    for (const int n : {0, 1, 2, 5}) {
      auto limited = images(interp_, "(" + a + ") \\ " + std::to_string(n));
      const std::size_t want = std::min(full.size(), static_cast<std::size_t>(n));
      ASSERT_EQ(limited.size(), want) << a << " \\ " << n;
      for (std::size_t k = 0; k < want; ++k) EXPECT_EQ(limited[k], full[k]);
    }
  }
}

TEST_P(MetamorphicLaws, ApplicationDistributesOverArguments) {
  // f(e) ≡ every x in e: f(x) — "operations search over the product
  // space of their operands".
  interp_.load("def f(x) { return x * 2 + 1; }");
  ExprGen g(GetParam() ^ 0xF00D);
  for (int i = 0; i < 20; ++i) {
    const std::string a = g.gen();
    const auto applied = images(interp_, "f(" + a + ")");
    std::vector<std::string> expect;
    for (const auto& v : images(interp_, a)) {
      auto one = images(interp_, "f(" + v + ")");
      ASSERT_EQ(one.size(), 1u);
      expect.push_back(one[0]);
    }
    EXPECT_EQ(applied, expect) << "f(" << a << ")";
  }
}

TEST_P(MetamorphicLaws, PipeIsTransparent) {
  // ! |> e produces exactly e's sequence — threading must not reorder,
  // drop, or duplicate (Section III.B's proxy contract).
  ExprGen g(GetParam() ^ 0xB1BE);
  for (int i = 0; i < 10; ++i) {
    const std::string a = g.gen();
    EXPECT_EQ(images(interp_, "! |> (" + a + ")"), images(interp_, a)) << a;
  }
}

TEST_P(MetamorphicLaws, CoExpressionDrainEqualsDirect) {
  ExprGen g(GetParam() ^ 0xC0E);
  for (int i = 0; i < 10; ++i) {
    const std::string a = g.gen();
    EXPECT_EQ(images(interp_, "! <> (" + a + ")"), images(interp_, a)) << a;
  }
}

TEST_P(MetamorphicLaws, NormalizationPreservesRandomExpressions) {
  Interpreter raw(Interpreter::Options{.pipeCapacity = 64, .normalize = false});
  Interpreter normd(Interpreter::Options{.pipeCapacity = 64, .normalize = true});
  raw.load("def g(x) { suspend 1 to x; }");
  normd.load("def g(x) { suspend 1 to x; }");
  ExprGen g(GetParam() ^ 0x40A);
  for (int i = 0; i < 15; ++i) {
    const std::string a = "g(" + g.gen() + " \\ 2)";
    std::vector<std::string> lhs, rhs;
    for (const auto& v : raw.evalAll(a)) lhs.push_back(v.image());
    for (const auto& v : normd.evalAll(a)) rhs.push_back(v.image());
    EXPECT_EQ(lhs, rhs) << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicLaws,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace congen::interp

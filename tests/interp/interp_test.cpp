// interp_test.cpp — core goal-directed language semantics through the
// interpreter: every expression is a generator that produces a sequence
// of values or fails.
#include "interp/interpreter.hpp"

#include <gtest/gtest.h>

#include "builtins/builtins.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace congen::interp {
namespace {

std::vector<std::int64_t> evalInts(Interpreter& interp, const std::string& src) {
  std::vector<std::int64_t> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.requireInt64("test"));
  return out;
}

std::vector<std::int64_t> evalInts(const std::string& src) {
  Interpreter interp;
  return evalInts(interp, src);
}

TEST(EvalBasics, LiteralsAndArithmetic) {
  EXPECT_EQ(evalInts("1 + 2 * 3"), (std::vector<std::int64_t>{7}));
  EXPECT_EQ(evalInts("2 ^ 10"), (std::vector<std::int64_t>{1024}));
  EXPECT_EQ(evalInts("7 % 3"), (std::vector<std::int64_t>{1}));
  Interpreter interp;
  EXPECT_EQ(interp.evalOne("\"a\" || \"b\"")->str(), "ab");
  EXPECT_EQ(interp.evalOne("2.5 + 0.5")->real(), 3.0);
  EXPECT_EQ(interp.evalOne("36rhello")->smallInt(), 29234652) << "radix literal";
}

TEST(EvalBasics, BigIntegerTransparency) {
  Interpreter interp;
  EXPECT_EQ(interp.evalOne("2 ^ 100")->bigInt().toString(), "1267650600228229401496703205376");
  EXPECT_EQ(interp.evalOne("(2^100) / (2^64)")->toDisplayString(), "68719476736")
      << "division demotes back to the small-int fast path";
}

TEST(EvalGenerators, RangeAndAlternation) {
  EXPECT_EQ(evalInts("1 to 5"), (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(evalInts("10 to 1 by -4"), (std::vector<std::int64_t>{10, 6, 2}));
  EXPECT_EQ(evalInts("1 | 5 | 3"), (std::vector<std::int64_t>{1, 5, 3}));
  EXPECT_EQ(evalInts("(1 | 2) + (10 | 20)"), (std::vector<std::int64_t>{11, 21, 12, 22}));
}

TEST(EvalGenerators, FailureIsSilent) {
  Interpreter interp;
  EXPECT_TRUE(interp.evalAll("&fail").empty());
  EXPECT_TRUE(interp.evalAll("3 < 2").empty()) << "failed comparison has no results";
  EXPECT_TRUE(interp.evalAll("3 < 2 & 99").empty()) << "failure propagates through &";
}

TEST(EvalGenerators, ComparisonYieldsRightOperand) {
  EXPECT_EQ(evalInts("2 < 5"), (std::vector<std::int64_t>{5}));
  EXPECT_EQ(evalInts("(1 to 10) > 8"), (std::vector<std::int64_t>{8, 8}));
}

TEST(EvalGenerators, ProductSearch) {
  // The headline example of Section II.
  EXPECT_EQ(evalInts("(1 to 2) * isprime(4 to 7)"), (std::vector<std::int64_t>{5, 7, 10, 14}));
  EXPECT_EQ(evalInts("(i := (1 to 2)) & (j := (4 to 7)) & isprime(j) & i*j"),
            (std::vector<std::int64_t>{5, 7, 10, 14}))
      << "explicit iterator-product decomposition agrees";
}

TEST(EvalGenerators, LimitAndBounded) {
  EXPECT_EQ(evalInts("(1 to 100) \\ 3"), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(evalInts("(1 to 5; 7 to 9)"), (std::vector<std::int64_t>{7, 8, 9}))
      << "sequence bounds all but the last term";
}

TEST(EvalAssignment, VariablesAndAugmented) {
  Interpreter interp;
  interp.evalOne("x := 5");
  EXPECT_EQ(interp.evalOne("x")->smallInt(), 5);
  interp.evalOne("x +:= 10");
  EXPECT_EQ(interp.evalOne("x")->smallInt(), 15);
  interp.evalOne("y := 1");
  interp.evalOne("x :=: y");
  EXPECT_EQ(interp.evalOne("x")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("y")->smallInt(), 15);
}

TEST(EvalAssignment, ReversalThroughSubscript) {
  Interpreter interp;
  interp.evalOne("l := [10, 20, 30]");
  interp.evalOne("l[2] := 99");
  EXPECT_EQ(interp.evalOne("l[2]")->smallInt(), 99);
  interp.evalOne("l[-1] +:= 1");
  EXPECT_EQ(interp.evalOne("l[3]")->smallInt(), 31);
}

TEST(EvalStructures, ListsTablesSets) {
  Interpreter interp;
  EXPECT_EQ(interp.evalOne("*[1,2,3]")->smallInt(), 3);
  EXPECT_EQ(evalInts(interp, "![10,20]"), (std::vector<std::int64_t>{10, 20}));
  interp.evalOne("t := table(0)");
  interp.evalOne("t[\"k\"] := 7");
  EXPECT_EQ(interp.evalOne("t[\"k\"]")->smallInt(), 7);
  EXPECT_EQ(interp.evalOne("t[\"missing\"]")->smallInt(), 0) << "table default";
  EXPECT_EQ(interp.evalOne("t.k")->smallInt(), 7) << "field sugar over tables";
  interp.evalOne("s := set()");
  interp.evalOne("insert(s, 5)");
  EXPECT_EQ(interp.evalOne("member(s, 5)")->smallInt(), 5);
  EXPECT_TRUE(interp.evalAll("member(s, 6)").empty());
}

TEST(EvalProcedures, GeneratorFunctions) {
  Interpreter interp;
  interp.load("def firstN(n) { local i; every i := 1 to n do suspend i * i; }");
  EXPECT_EQ(evalInts(interp, "firstN(4)"), (std::vector<std::int64_t>{1, 4, 9, 16}));
  EXPECT_EQ(evalInts(interp, "firstN(2) + firstN(2)"),
            (std::vector<std::int64_t>{2, 5, 5, 8})) << "generator calls participate in products";
}

TEST(EvalProcedures, SuspendExpressionGeneratesAll) {
  Interpreter interp;
  interp.load("def g() { suspend 1 to 3; }");
  EXPECT_EQ(evalInts(interp, "g()"), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(EvalProcedures, ReturnAndFail) {
  Interpreter interp;
  interp.load(R"(
    def pick(x) { if x % 2 == 0 then return x; fail; }
    def nothing() { }
  )");
  EXPECT_EQ(evalInts(interp, "pick(4)"), (std::vector<std::int64_t>{4}));
  EXPECT_TRUE(interp.evalAll("pick(3)").empty());
  EXPECT_EQ(evalInts(interp, "pick(1 to 10)"), (std::vector<std::int64_t>{2, 4, 6, 8, 10}))
      << "failure resumes the argument generator";
  EXPECT_TRUE(interp.evalAll("nothing()").empty()) << "falling off the end fails";
}

TEST(EvalProcedures, VariadicConvention) {
  Interpreter interp;
  interp.load("def f(a, b) { return type(b); }");
  EXPECT_EQ(interp.evalOne("f(1)")->str(), "null") << "missing args are &null";
  EXPECT_EQ(interp.evalOne("f(1, 2, 3)")->str(), "integer") << "extras ignored";
}

TEST(EvalProcedures, Recursion) {
  Interpreter interp;
  interp.load("def fact(n) { if n <= 1 then return 1; return n * fact(n - 1); }");
  EXPECT_EQ(interp.evalOne("fact(10)")->smallInt(), 3628800);
  EXPECT_EQ(interp.evalOne("fact(25)")->bigInt().toString(), "15511210043330985984000000");
}

TEST(EvalProcedures, MutualRecursion) {
  Interpreter interp;
  interp.load(R"(
    def isEven(n) { if n == 0 then return 1; return isOdd(n - 1); }
    def isOdd(n) { if n == 0 then return 0; return isEven(n - 1); }
  )");
  EXPECT_EQ(interp.evalOne("isEven(10)")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("isEven(7)")->smallInt(), 0);
}

TEST(EvalProcedures, FirstClassAndAlternatedCallees) {
  Interpreter interp;
  interp.load(R"(
    def d(x) { return x * 2; }
    def t(x) { return x * 3; }
  )");
  // (f | g)(x) ≡ f(x) | g(x)  (Section II).
  EXPECT_EQ(evalInts(interp, "(d | t)(5)"), (std::vector<std::int64_t>{10, 15}));
  interp.evalOne("h := d");
  EXPECT_EQ(evalInts(interp, "h(4)"), (std::vector<std::int64_t>{8})) << "procedures are values";
}

TEST(EvalScoping, LocalsShadowGlobals) {
  Interpreter interp;
  interp.evalOne("x := 100");
  interp.load("def f() { local x; x := 1; return x; }");
  EXPECT_EQ(interp.evalOne("f()")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("x")->smallInt(), 100) << "global untouched";
}

TEST(EvalScoping, GlobalsVisibleInProcedures) {
  Interpreter interp;
  interp.evalOne("base := 10");
  interp.load("def f(n) { return base + n; }");
  EXPECT_EQ(interp.evalOne("f(5)")->smallInt(), 15);
}

TEST(EvalScoping, UndeclaredAreImplicitlyLocalPerCall) {
  Interpreter interp;
  interp.load(R"(
    def probe() {
      if type(c) == "integer" then return 99;  # would fire if c leaked
      c := 1;
      return c;
    }
  )");
  // c is local: each call starts fresh (undeclared = local in Icon).
  EXPECT_EQ(interp.evalOne("probe()")->smallInt(), 1);
  EXPECT_EQ(interp.evalOne("probe()")->smallInt(), 1);
}

TEST(EvalControl, LoopsAndBreakNext) {
  Interpreter interp;
  interp.load(R"(
    def collatzLen(n) {
      local len;
      len := 0;
      while n ~= 1 do {
        if n % 2 == 0 then n := n / 2; else n := 3 * n + 1;
        len +:= 1;
      };
      return len;
    }
    def firstSquareOver(lim) {
      local i;
      every i := 1 to 1000 do {
        if i * i > lim then return i * i;
      };
      fail;
    }
  )");
  EXPECT_EQ(interp.evalOne("collatzLen(27)")->smallInt(), 111);
  EXPECT_EQ(interp.evalOne("firstSquareOver(50)")->smallInt(), 64);
}

TEST(EvalControl, UntilAndRepeat) {
  Interpreter interp;
  interp.load(R"(
    def countTo(n) {
      local c;
      c := 0;
      until c >= n do c +:= 1;
      return c;
    }
    def firstPow2Over(n) {
      local p;
      p := 1;
      repeat { p *:= 2; if p > n then break; };
      return p;
    }
  )");
  EXPECT_EQ(interp.evalOne("countTo(7)")->smallInt(), 7);
  EXPECT_EQ(interp.evalOne("firstPow2Over(100)")->smallInt(), 128);
}

TEST(EvalControl, IfIsAGenerator) {
  EXPECT_EQ(evalInts("if 1 < 2 then 1 to 3 else 9"), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(evalInts("if 2 < 1 then 1 to 3 else 9"), (std::vector<std::int64_t>{9}));
  EXPECT_TRUE(Interpreter().evalAll("if 2 < 1 then 5").empty());
}

TEST(EvalControl, NotInverts) {
  Interpreter interp;
  EXPECT_FALSE(interp.evalAll("not (1 < 2)").size());
  EXPECT_EQ(interp.evalAll("not (2 < 1)").size(), 1u);
}

TEST(EvalStrings, BuiltinsWork) {
  Interpreter interp;
  EXPECT_EQ(evalInts(interp, "find(\"an\", \"banana\")"), (std::vector<std::int64_t>{2, 4}));
  EXPECT_EQ(interp.evalOne("*split(\"a b  c\")")->smallInt(), 3);
  EXPECT_EQ(interp.evalOne("reverse(\"abc\")")->str(), "cba");
  EXPECT_EQ(interp.evalOne("map(\"HELLO\")")->str(), "hello");
  EXPECT_EQ(interp.evalOne("\"hello\"[2]")->str(), "e");
}

TEST(EvalErrors, RuntimeErrorsAreIconErrors) {
  Interpreter interp;
  EXPECT_THROW(interp.evalAll("1 / 0"), IconError);
  EXPECT_THROW(interp.evalAll("\"abc\" + 1"), IconError);
  EXPECT_THROW(interp.evalAll("5(1)"), IconError) << "calling a non-procedure";
  EXPECT_THROW(interp.evalAll("!42"), IconError);
}

TEST(EvalHostInterop, NativeRegistrationAndGlobals) {
  Interpreter interp;
  int calls = 0;
  interp.registerNative("host", builtins::makeNative("host", [&calls](std::vector<Value>& args) {
    ++calls;
    return ops::mul(args.at(0), Value::integer(10));
  }));
  interp.defineGlobal("data", Value::integer(7));
  EXPECT_EQ(interp.evalOne("host(data)")->smallInt(), 70);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(interp.evalOne("this::host(3)")->smallInt(), 30) << ":: cut-through";
  EXPECT_EQ(interp.global("data")->smallInt(), 7);
}

TEST(EvalHostInterop, CallLoadedProcedureFromHost) {
  Interpreter interp;
  interp.load("def add3(a, b, c) { return a + b + c; }");
  auto gen = interp.call("add3", {Value::integer(1), Value::integer(2), Value::integer(3)});
  EXPECT_EQ(gen->nextValue()->smallInt(), 6);
  EXPECT_THROW(interp.call("nosuch", {}), IconError);
  EXPECT_EQ(interp.call("sqrt", {Value::integer(16)})->nextValue()->real(), 4.0)
      << "builtins reachable through call()";
}

}  // namespace
}  // namespace congen::interp

// vm_differential_test.cpp — property-based differential testing of the
// tree-walking backend against the bytecode VM. A seeded generator
// produces random-but-bounded programs over the constructs where the
// two backends have genuinely separate implementations — suspend/resume
// through procedure calls, goal-directed failure propagation,
// alternation/limit/repeated-alternation, `every` loops with
// break/next, co-expressions (`create`/`@`/`^`), pipes (`|>`), and
// &error conversion — and both backends must agree byte-for-byte on
// stdout, on the drained result count, and on the terminating run-time
// error (if any). Every failure message carries the seed and the full
// program text, so any divergence reproduces deterministically.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "kernel/error_env.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace congen::interp {
namespace {

/// Deterministic program generator. Termination is by construction:
/// ranges have literal bounds, repeated alternation only appears under
/// a limit, `while` loops count a local up to a literal, and generated
/// procedures only call lower-numbered procedures (the call graph is a
/// DAG). Known, documented backend divergences are simply not in the
/// grammar (see docs/INTERNALS.md §13).
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  std::string program() {
    nProcs_ = irand(0, 2);
    std::ostringstream os;
    for (int i = 0; i < nProcs_; ++i) os << proc(i);
    callLimit_ = nProcs_;
    os << "procedure main(args)\n  local v, w, c\n";
    const int stmts = irand(2, 4);
    for (int i = 0; i < stmts; ++i) os << "  " << stmt() << ";\n";
    os << "end\n";
    return os.str();
  }

 private:
  int irand(int lo, int hi) { return lo + static_cast<int>(rng_() % (hi - lo + 1)); }

  std::string lit() { return std::to_string(irand(-3, 9)); }
  std::string posLit() { return std::to_string(irand(1, 9)); }

  /// Single-valued integer-ish expression (may fail, may call procs).
  std::string expr(int depth) {
    if (depth >= 3) return lit();
    switch (irand(0, 7)) {
      case 0:
      case 1:
        return lit();
      case 2:
        return "(" + expr(depth + 1) + " " + pick({"+", "-", "*"}) + " " + expr(depth + 1) + ")";
      case 3:
        return "(" + expr(depth + 1) + " ^ " + std::to_string(irand(0, 3)) + ")";
      case 4:
        return "(-" + expr(depth + 1) + ")";
      case 5:
        return "(" + expr(depth + 1) + " " + pick({"<", "<=", ">", ">=", "=", "~="}) + " " +
               expr(depth + 1) + ")";
      case 6:
        // Only lower-numbered procedures are callable from here, so the
        // generated call graph is a DAG and recursion is impossible.
        if (callLimit_ > 0) {
          return "p" + std::to_string(irand(0, callLimit_ - 1)) + "(" + expr(depth + 1) + ", " +
                 expr(depth + 1) + ")";
        }
        return lit();
      default:
        return "isprime(" + expr(depth + 1) + ")";
    }
  }

  /// Generator expression: a finite sequence of zero or more values.
  std::string seq(int depth) {
    if (depth >= 3) return "(" + lit() + " to " + lit() + ")";
    switch (irand(0, 6)) {
      case 0:
        return "(" + lit() + " to " + lit() + ")";
      case 1:
        return "(" + lit() + " to " + lit() + " by " + pick({"-2", "-1", "1", "2", "3"}) + ")";
      case 2:
        return "(" + seq(depth + 1) + " | " + seq(depth + 1) + ")";
      case 3:
        // Repeated alternation stays finite only under a limit.
        return "((|" + seq(depth + 1) + ") \\ " + posLit() + ")";
      case 4:
        return "(" + seq(depth + 1) + " \\ " + posLit() + ")";
      case 5:
        return "(" + seq(depth + 1) + " & " + seq(depth + 1) + ")";
      default:
        return expr(depth + 1);
    }
  }

  std::string stmt() {
    switch (irand(0, 9)) {
      case 0:
        return "every v := " + seq(0) + " do write(v + " + lit() + ")";
      case 1:
        return "every write(" + seq(0) + ")";
      case 2:
        return "w := " + expr(0) + "; write(w | \"failed\")";
      case 3:
        return "if " + expr(0) + " < " + expr(0) + " then write(\"t\") else write(\"f\")";
      case 4:
        return "v := 0; while v < " + posLit() + " do { write(v); v := v + 1 }";
      case 5:
        // `next` in body position: skip large elements.
        return "every v := " + seq(0) + " do { if v > " + lit() + " then next; write(v) }";
      case 6:
        return "every v := " + seq(0) + " do { if v > " + lit() + " then break; write(v) }";
      case 7:
        // Co-expression activation plus a refreshed copy (`^`). Only
        // `c` ever holds a co-expression, and `c` is only activated,
        // never written raw: the display form of a co-expression embeds
        // its heap address, which no two runs share.
        return "c := create " + seq(0) + "; every 1 to " + posLit() +
               " do write(@c | \"done\"); c := ^c; write(@c | \"no\")";
      case 8:
        // A pipe producer drained through promotion, then &error
        // conversion of a coercion fault into failure.
        return "every write(! (|> " + seq(0) + "))";
      default:
        return "&error := 2; every write((" + expr(0) +
               " + \"x\") | \"converted\"); write(&errornumber | \"noerr\")";
    }
  }

  std::string proc(int i) {
    callLimit_ = i;
    std::ostringstream os;
    os << "procedure p" << i << "(a, b)\n  local i\n";
    switch (irand(0, 2)) {
      case 0:
        os << "  every i := " << seq(1) << " do suspend i + a\n";
        os << "  if a < b then return a + b\n  fail\n";
        break;
      case 1:
        os << "  suspend " << seq(1) << "\n  suspend b\n";
        break;
      default:
        os << "  if a > b then fail\n  return " << expr(1) << "\n";
        break;
    }
    os << "end\n";
    return os.str();
  }

  std::string pick(std::initializer_list<const char*> xs) {
    return *(xs.begin() + irand(0, static_cast<int>(xs.size()) - 1));
  }

  std::mt19937_64 rng_;
  int nProcs_ = 0;
  int callLimit_ = 0;  // procedures callable from the current body
};

struct Outcome {
  std::string out;
  int results = 0;
  int errNumber = 0;  // 0 = ran to completion

  bool operator==(const Outcome& o) const {
    return out == o.out && results == o.results && errNumber == o.errNumber;
  }
};

Outcome runProgram(const std::string& src, Backend backend) {
  // &error conversion credit is per-thread by design (kernel/error_env),
  // so a generated program that banked credits would otherwise leak them
  // into the *next* program's run on this thread — a one-sided leak,
  // since the first backend's run would also spend them. Each run starts
  // from a clean slate.
  ErrorEnv::current() = ErrorEnv::State{};
  Outcome r;
  ::testing::internal::CaptureStdout();
  try {
    Interpreter::Options opts;
    opts.backend = backend;
    Interpreter interp{opts};
    interp.load(src);
    auto gen = interp.call("main", {Value::list(ListImpl::create())});
    while (gen->nextValue()) ++r.results;
  } catch (const IconError& e) {
    r.errNumber = e.number();
  }
  r.out = ::testing::internal::GetCapturedStdout();
  return r;
}

/// 100 programs per shard x 10 shards = the ~1k-program budget, split
/// so ctest can run shards in parallel and a failure names its shard.
class VmDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmDifferential, TreeAndVmAgree) {
  const std::uint64_t shard = GetParam();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t seed = shard * 1000003ull + static_cast<std::uint64_t>(i);
    ProgramGen g(seed);
    const std::string src = g.program();
    SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + src);
    const Outcome tree = runProgram(src, Backend::kTree);
    const Outcome vm = runProgram(src, Backend::kVm);
    EXPECT_EQ(tree.out, vm.out);
    EXPECT_EQ(tree.results, vm.results);
    EXPECT_EQ(tree.errNumber, vm.errNumber);
    if (::testing::Test::HasFailure()) return;  // one reproducer is enough
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, VmDifferential, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace congen::interp

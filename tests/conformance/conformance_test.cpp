// conformance_test.cpp — differential testing of the three execution
// paths. Every shipped example (examples/scripts/*.jn and
// examples/embedded/*.ccg) runs through the tree-walking interpreter,
// the bytecode VM, AND the congenc-emitted C++ module, and the result
// sequences must be byte-identical. The paper's premise (Section VI) is
// that the interactive and compiled harnesses execute the same
// semantics; this suite keeps the three from drifting silently.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "meta/annotations.hpp"
#include "runtime/collections.hpp"

// Build-time emitted modules, one per example (see CMakeLists.txt).
#include "conf_errors.hpp"
#include "conf_mapreduce.hpp"
#include "conf_nqueens.hpp"
#include "conf_quota.hpp"
#include "conf_retry.hpp"
#include "conf_timeout.hpp"
#include "conf_wordcount.hpp"
#include "conf_wordfreq.hpp"
#include "confembed_logstats_embedded.hpp"
#include "confembed_wordcount_embedded.hpp"

namespace congen {
namespace {

const std::string kRoot = CONGEN_SOURCE_DIR;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Value emptyArgs() { return Value::list(ListImpl::create()); }

/// Drain main(args=[]) through the interpreter, capturing stdout.
std::string interpMainOutput(const std::string& scriptPath, interp::Backend backend) {
  const std::string src = readFile(scriptPath);
  ::testing::internal::CaptureStdout();
  {
    interp::Interpreter::Options opts;
    opts.backend = backend;
    interp::Interpreter interp{opts};
    interp.load(src);
    auto gen = interp.call("main", {emptyArgs()});
    while (gen->nextValue()) {
    }
  }
  return ::testing::internal::GetCapturedStdout();
}

/// Drain main(args=[]) through an emitted module, capturing stdout.
/// Construction runs the script's top-level statements, matching load().
template <class Module>
std::string emittedMainOutput() {
  ::testing::internal::CaptureStdout();
  {
    Module mod;
    auto gen = mod.call("main", {emptyArgs()});
    while (gen->nextValue()) {
    }
  }
  return ::testing::internal::GetCapturedStdout();
}

template <class Module>
void expectScriptConformance(const std::string& name) {
  const std::string path = kRoot + "/examples/scripts/" + name + ".jn";
  const std::string viaTree = interpMainOutput(path, interp::Backend::kTree);
  const std::string viaVm = interpMainOutput(path, interp::Backend::kVm);
  const std::string viaEmitted = emittedMainOutput<Module>();
  EXPECT_FALSE(viaTree.empty()) << name << " produced no output";
  EXPECT_EQ(viaTree, viaVm) << name << ": tree and VM backends disagree";
  EXPECT_EQ(viaTree, viaEmitted) << name << ": interpreter and emitted paths disagree";
}

TEST(ConformanceScripts, Errors) { expectScriptConformance<Conf_errors>("errors"); }
TEST(ConformanceScripts, Mapreduce) { expectScriptConformance<Conf_mapreduce>("mapreduce"); }
TEST(ConformanceScripts, Nqueens) { expectScriptConformance<Conf_nqueens>("nqueens"); }
TEST(ConformanceScripts, Quota) { expectScriptConformance<Conf_quota>("quota"); }
TEST(ConformanceScripts, Retry) { expectScriptConformance<Conf_retry>("retry"); }
TEST(ConformanceScripts, Timeout) { expectScriptConformance<Conf_timeout>("timeout"); }
TEST(ConformanceScripts, Wordcount) { expectScriptConformance<Conf_wordcount>("wordcount"); }
TEST(ConformanceScripts, Wordfreq) { expectScriptConformance<Conf_wordfreq>("wordfreq"); }

/// The suite must cover every shipped example: a new .jn or .ccg file
/// fails here until it is added to the conformance corpus above.
TEST(ConformanceCorpus, CoversEveryShippedExample) {
  std::set<std::string> scripts, embedded;
  for (const auto& e : std::filesystem::directory_iterator(kRoot + "/examples/scripts")) {
    if (e.path().extension() == ".jn") scripts.insert(e.path().stem().string());
  }
  for (const auto& e : std::filesystem::directory_iterator(kRoot + "/examples/embedded")) {
    if (e.path().extension() == ".ccg") embedded.insert(e.path().stem().string());
  }
  EXPECT_EQ(scripts, (std::set<std::string>{"errors", "mapreduce", "nqueens", "quota", "retry",
                                            "timeout", "wordcount", "wordfreq"}))
      << "new script: add it to tests/conformance";
  EXPECT_EQ(embedded, (std::set<std::string>{"logstats_embedded", "wordcount_embedded"}))
      << "new embedded example: add it to tests/conformance";
}

std::string regionText(const std::string& src, const meta::Region& r) {
  return src.substr(r.innerBegin, r.innerEnd - r.innerBegin);
}

ListPtr wordcountLines() {
  auto lines = ListImpl::create();
  lines->put(Value::string("the quick brown fox jumps over the lazy dog"));
  lines->put(Value::string("concurrent generators embed goal directed evaluation"));
  lines->put(Value::string("pipes are multithreaded generator proxies"));
  return lines;
}

std::vector<std::string> drainImages(const GenPtr& gen) {
  std::vector<std::string> images;
  while (auto v = gen->nextValue()) images.push_back(v->toDisplayString());
  return images;
}

TEST(ConformanceEmbedded, WordcountPipelineStreamAgrees) {
  const std::string src = readFile(kRoot + "/examples/embedded/wordcount_embedded.ccg");
  const auto regions = meta::parseAnnotations(src);
  ASSERT_EQ(regions.size(), 2u);

  ConfEmbed_wordcount_embedded mod;
  mod.set("lines", Value::list(wordcountLines()));
  const auto viaEmitted = drainImages(mod.expr_0());

  // The definition region's generators must agree too (hashWords is the
  // map-reduce mapper of the shipped example). The interpreter side is
  // goal-directed invocation over every line; mirror that cross-product
  // explicitly on the emitted side.
  std::vector<std::string> emittedHash;
  for (auto lines = mod.call("readLines", {}); auto line = lines->nextValue();) {
    const auto per = drainImages(mod.call("hashWords", {*line}));
    emittedHash.insert(emittedHash.end(), per.begin(), per.end());
  }

  for (const auto backend : {interp::Backend::kTree, interp::Backend::kVm}) {
    SCOPED_TRACE(backend == interp::Backend::kVm ? "vm backend" : "tree backend");
    interp::Interpreter::Options opts;
    opts.backend = backend;
    interp::Interpreter interp{opts};
    interp.defineGlobal("lines", Value::list(wordcountLines()));
    interp.load(regionText(src, regions[0]));
    const auto viaInterp = drainImages(interp.eval(regionText(src, regions[1])));

    EXPECT_FALSE(viaInterp.empty());
    EXPECT_EQ(viaInterp, viaEmitted) << "pipe-expression streams disagree";
    EXPECT_EQ(drainImages(interp.eval("hashWords(readLines())")), emittedHash);
  }
}

ListPtr logstatsLog() {
  auto log = ListImpl::create();
  for (const char* line : {"INFO service=auth ms=12", "WARN service=db ms=140",
                           "ERROR service=db ms=480", "INFO service=auth ms=9",
                           "ERROR service=auth ms=77", "INFO service=web ms=33"}) {
    log->put(Value::string(line));
  }
  return log;
}

TEST(ConformanceEmbedded, LogstatsStreamsAgree) {
  const std::string src = readFile(kRoot + "/examples/embedded/logstats_embedded.ccg");
  const auto regions = meta::parseAnnotations(src);
  ASSERT_EQ(regions.size(), 1u);

  ConfEmbed_logstats_embedded mod;
  mod.set("log", Value::list(logstatsLog()));
  const auto emittedEntries = drainImages(mod.call("entries", {}));
  std::vector<std::string> emittedSev;
  for (auto gen = mod.call("entries", {}); auto e = gen->nextValue();) {
    emittedSev.push_back(mod.call("severity", {*e})->nextValue()->toDisplayString());
  }

  for (const auto backend : {interp::Backend::kTree, interp::Backend::kVm}) {
    SCOPED_TRACE(backend == interp::Backend::kVm ? "vm backend" : "tree backend");
    interp::Interpreter::Options opts;
    opts.backend = backend;
    interp::Interpreter interp{opts};
    interp.defineGlobal("log", Value::list(logstatsLog()));
    interp.load(regionText(src, regions[0]));

    // Parsed-entry streams (records, scanning) must agree element-wise,
    // and so must the derived severity stream.
    const auto interpEntries = drainImages(interp.eval("entries()"));
    EXPECT_FALSE(interpEntries.empty());
    EXPECT_EQ(interpEntries, emittedEntries);

    std::vector<std::string> interpSev;
    for (auto gen = interp.eval("entries()"); auto e = gen->nextValue();) {
      interpSev.push_back(interp.call("severity", {*e})->nextValue()->toDisplayString());
    }
    EXPECT_EQ(interpSev, emittedSev);

    for (const char* svc : {"auth", "db", "web", "absent"}) {
      auto viaInterp = interp.call("worstLatency", {Value::string(svc)})->nextValue();
      auto viaEmitted = mod.call("worstLatency", {Value::string(svc)})->nextValue();
      ASSERT_EQ(viaInterp.has_value(), viaEmitted.has_value()) << svc;
      if (viaInterp) EXPECT_EQ(viaInterp->toDisplayString(), viaEmitted->toDisplayString()) << svc;
    }
  }
}

}  // namespace
}  // namespace congen

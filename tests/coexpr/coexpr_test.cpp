// coexpr_test.cpp — co-expressions: activation, exhaustion, refresh, and
// environment shadowing (Fig. 1's <> |<> @ ^ ! calculus).
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "coexpr/shadow.hpp"
#include "kernel/coexpression.hpp"
#include "runtime/error.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;
using test::range;

TEST(CoExprTest, ActivationStepsOneResult) {
  auto c = CoExpression::create([] { return test::range(1, 3); });
  EXPECT_EQ(c->activate()->smallInt(), 1);
  EXPECT_EQ(c->activate()->smallInt(), 2);
  EXPECT_EQ(c->resultCount(), 2u);
  EXPECT_EQ(c->activate()->smallInt(), 3);
  EXPECT_FALSE(c->activate().has_value());
  EXPECT_TRUE(c->exhausted());
}

TEST(CoExprTest, ExhaustedStaysExhausted) {
  // Unlike raw kernel generators, an exhausted co-expression does NOT
  // auto-restart — Icon requires an explicit refresh (^).
  auto c = CoExpression::create([] { return test::ci(1); });
  c->activate();
  EXPECT_FALSE(c->activate().has_value());
  EXPECT_FALSE(c->activate().has_value()) << "still exhausted";
  auto fresh = c->refreshed();
  EXPECT_EQ(fresh->activate()->smallInt(), 1);
  EXPECT_FALSE(c->exhausted() && fresh->exhausted()) << "refresh yields a NEW co-expression";
}

TEST(CoExprTest, FactoryRunsEagerlyAtCreation) {
  // The environment snapshot must happen at creation time, not first
  // activation (Section III.A).
  int built = 0;
  auto factory = [&built]() -> GenPtr {
    ++built;
    return test::ci(5);
  };
  auto c = CoExpression::create(factory);
  EXPECT_EQ(built, 1) << "body built at creation";
  c->activate();
  EXPECT_EQ(built, 1);
}

TEST(ShadowTest, CopiesReferencedLocals) {
  auto x = CellVar::create(Value::integer(10));
  // |<> (x + 1): the co-expression sees a copy of x at creation.
  auto factory = shadowEnv({x}, [](const std::vector<VarPtr>& copies) {
    return makeBinaryOpGen("+", VarGen::create(copies[0]), test::ci(1));
  });
  auto c = CoExpression::create(factory);
  x->set(Value::integer(999));  // mutate AFTER creation
  EXPECT_EQ(c->activate()->smallInt(), 11) << "shadowed copy is isolated from the original";
}

TEST(ShadowTest, RefreshRecopiesEnvironment) {
  auto x = CellVar::create(Value::integer(1));
  auto factory = shadowEnv({x}, [](const std::vector<VarPtr>& copies) {
    return VarGen::create(copies[0]);
  });
  auto c = CoExpression::create(factory);
  EXPECT_EQ(c->activate()->smallInt(), 1);
  x->set(Value::integer(2));
  auto fresh = c->refreshed();
  EXPECT_EQ(fresh->activate()->smallInt(), 2) << "^c re-copies the CURRENT environment";
}

TEST(ShadowTest, WritesDoNotLeakOut) {
  auto x = CellVar::create(Value::integer(5));
  auto factory = shadowEnv({x}, [](const std::vector<VarPtr>& copies) {
    // co-expression body: x := x * 2 (on the copy)
    return makeAugAssignGen("*", VarGen::create(copies[0]), test::ci(2));
  });
  auto c = CoExpression::create(factory);
  EXPECT_EQ(c->activate()->smallInt(), 10);
  EXPECT_EQ(x->get().smallInt(), 5) << "the enclosing local is untouched (no interference)";
}

TEST(CoExprCreateGenTest, YieldsFreshCoExpressionPerCycle) {
  auto node = CoExprCreateGen::create([] { return test::range(1, 2); });
  auto v1 = node->nextValue();
  ASSERT_TRUE(v1 && v1->isCoExpr());
  EXPECT_FALSE(node->nextValue().has_value()) << "singleton per cycle";
  auto v2 = node->nextValue();  // restart: a NEW co-expression
  ASSERT_TRUE(v2.has_value());
  EXPECT_NE(v1->coExpr(), v2->coExpr());
}

TEST(ActivateGenTest, OneStepPerEvaluation) {
  auto c = CoExpression::create([] { return test::range(10, 13); });
  auto cv = CellVar::create(Value::coexpr(c));
  auto node = ActivateGen::create(VarGen::create(cv));
  // Each full cycle of @c performs exactly one activation.
  EXPECT_EQ(ints(node), (std::vector<std::int64_t>{10}));
  EXPECT_EQ(ints(node), (std::vector<std::int64_t>{11}));
  EXPECT_EQ(ints(node), (std::vector<std::int64_t>{12}));
}

TEST(ActivateGenTest, ErrorsOnNonCoExpression) {
  auto node = ActivateGen::create(ci(5));
  EXPECT_THROW(node->nextValue(), IconError);
}

TEST(RefreshGenTest, ProducesRestartedCopy) {
  auto c = CoExpression::create([] { return test::range(1, 5); });
  c->activate();
  c->activate();  // advance to 2
  auto cv = CellVar::create(Value::coexpr(c));
  auto node = RefreshGen::create(VarGen::create(cv));
  auto v = node->nextValue();
  ASSERT_TRUE(v && v->isCoExpr());
  EXPECT_EQ(v->coExpr()->activate()->smallInt(), 1) << "refreshed copy starts over";
  EXPECT_EQ(c->activate()->smallInt(), 3) << "original is unaffected";
}

TEST(PromoteCoExprTest, BangLiftsToGenerator) {
  // !c drains the co-expression from its current position.
  auto c = CoExpression::create([] { return test::range(1, 4); });
  c->activate();  // consume 1
  auto g = PromoteGen::create(ConstGen::create(Value::coexpr(c)));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{2, 3, 4}));
}

TEST(InterleavingTest, TwoCoExpressionsAlternate) {
  // The classic coroutine interleave, explicit stepping with @.
  auto odds = CoExpression::create([] {
    return RangeGen::create(Value::integer(1), Value::integer(9), Value::integer(2));
  });
  auto evens = CoExpression::create([] {
    return RangeGen::create(Value::integer(2), Value::integer(10), Value::integer(2));
  });
  std::vector<std::int64_t> merged;
  for (int i = 0; i < 4; ++i) {
    merged.push_back(odds->activate()->smallInt());
    merged.push_back(evens->activate()->smallInt());
  }
  EXPECT_EQ(merged, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(CoExprValueTest, ParticipatesInValueSystem) {
  auto c = CoExpression::create([] { return test::ci(1); });
  const Value v = Value::coexpr(c);
  EXPECT_TRUE(v.isCoExpr());
  EXPECT_EQ(v.typeName(), "co-expression");
  EXPECT_TRUE(v.equals(Value::coexpr(c)));
  EXPECT_FALSE(v.equals(Value::coexpr(c->refreshed())));
}

}  // namespace
}  // namespace congen

// fault_stress_test.cpp — the FaultInjector itself, and the concurrency
// layer under injected delays and failures. Compiled-in only under
// CONGEN_FAULT_INJECTION (the tsan / asan-ubsan presets); in a plain
// build every test here skips.
#include "concur/fault_injection.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "../testutil.hpp"
#include "concur/blocking_queue.hpp"
#include "concur/pipe.hpp"
#include "concur/thread_pool.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using stress::eventually;
using stress::onThreads;
using testing::FaultInjector;
using testing::FaultSite;
using testing::InjectedFault;
using testing::ScopedFaultInjection;
using testing::SitePolicy;

#define REQUIRE_FAULT_HOOKS()                                                \
  if (!FaultInjector::compiledIn()) {                                        \
    GTEST_SKIP() << "built without CONGEN_FAULT_INJECTION — nothing to do";  \
  }

TEST(FaultInjectorStress, DeterministicDecisionStream) {
  REQUIRE_FAULT_HOOKS();
  // Same seed, same single-threaded call sequence → identical decisions.
  auto run = [](std::uint64_t seed) {
    ScopedFaultInjection arm(seed, SitePolicy{/*delayPerMille=*/200, /*maxDelayMicros=*/1,
                                              /*failPerMille=*/100});
    BlockingQueue<int> q(0);
    std::vector<int> failedAt;
    for (int i = 0; i < 2000; ++i) {
      try {
        q.put(i);
      } catch (const InjectedFault&) {
        failedAt.push_back(i);
      }
    }
    auto& inj = FaultInjector::instance();
    return std::tuple{inj.delaysInjected(), inj.failuresInjected(), failedAt};
  };
  const auto a = run(stress::seed());
  const auto b = run(stress::seed());
  EXPECT_EQ(a, b) << "the decision stream must be a pure function of the seed";
  EXPECT_GT(std::get<0>(a), 0u) << "with 2000 draws at 20% some delays must fire";
  EXPECT_GT(std::get<1>(a), 0u);
  const auto c = run(stress::seed() + 1);
  EXPECT_NE(std::get<2>(a), std::get<2>(c)) << "a different seed takes a different path";
}

TEST(FaultInjectorStress, HitCountersCoverAllInstrumentedSites) {
  REQUIRE_FAULT_HOOKS();
  ScopedFaultInjection arm(stress::seed(), SitePolicy{});  // observe only
  ThreadPool pool;
  {
    // Capacity 1 forces the unbatched per-element protocol (put/take)...
    auto mailbox = Pipe::create([] { return test::range(1, 5); }, /*capacity=*/1, pool);
    while (mailbox->activate()) {
    }
    // ...and a roomier pipe runs the batched one (putAll/takeUpTo).
    auto batched = Pipe::create([] { return test::range(1, 50); }, /*capacity=*/8, pool);
    while (batched->activate()) {
    }
  }
  ASSERT_TRUE(eventually([&] { return pool.tasksCompleted() == 2u; }));
  auto& inj = FaultInjector::instance();
  EXPECT_GT(inj.hits(FaultSite::QueuePut), 0u);
  EXPECT_GT(inj.hits(FaultSite::QueueTake), 0u);
  EXPECT_GT(inj.hits(FaultSite::QueuePutAll), 0u);
  EXPECT_GT(inj.hits(FaultSite::QueueTakeUpTo), 0u);
  EXPECT_GT(inj.hits(FaultSite::PipeBatchFlush), 0u);
  EXPECT_GT(inj.hits(FaultSite::QueueClose), 0u);
  EXPECT_GT(inj.hits(FaultSite::PoolSubmit), 0u);
  EXPECT_GT(inj.hits(FaultSite::PoolTaskRun), 0u);
}

TEST(FaultStress, QueueConservationUnderDelays) {
  REQUIRE_FAULT_HOOKS();
  // Delays at every boundary shake the schedule; the conservation
  // invariant must hold regardless.
  ScopedFaultInjection arm(stress::seed(),
                           SitePolicy{/*delayPerMille=*/150, /*maxDelayMicros=*/200,
                                      /*failPerMille=*/0});
  BlockingQueue<int> q(4);
  constexpr int kProducers = 3;
  const int perProducer = 150 * stress::scale();
  std::atomic<int> taken{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < perProducer; ++i) EXPECT_TRUE(q.put(i));
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (q.take()) taken.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(taken.load(), kProducers * perProducer);
}

TEST(FaultStress, PipesSurviveScheduleShaking) {
  REQUIRE_FAULT_HOOKS();
  // Delay-only chaos across the whole layer while pipes stream, refresh,
  // and get abandoned — the lifecycle invariants may not depend on
  // timing luck.
  ScopedFaultInjection arm(stress::seed(),
                           SitePolicy{/*delayPerMille=*/100, /*maxDelayMicros=*/300,
                                      /*failPerMille=*/0});
  ThreadPool pool;
  std::size_t tasks = 0;
  for (int round = 0; round < 15 * stress::scale(); ++round) {
    auto pipe = Pipe::create([] { return test::range(1, 50); }, /*capacity=*/2, pool);
    ++tasks;
    ASSERT_EQ(pipe->activate()->smallInt(), 1);
    if (round % 3 == 0) {
      auto fresh = rcStaticCast<Pipe>(pipe->refreshed());
      ++tasks;
      ASSERT_EQ(fresh->activate()->smallInt(), 1);
    }  // abandoned mid-stream otherwise: drop both
  }
  ASSERT_TRUE(eventually([&] { return pool.tasksCompleted() == tasks; }, 30000))
      << "an abandoned producer outlived its pipe under injected delays";
}

TEST(FaultStress, InjectedSubmitFailureSurfacesAtPipeCreation) {
  REQUIRE_FAULT_HOOKS();
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});
  inj.armSite(FaultSite::PoolSubmit,
              SitePolicy{/*delayPerMille=*/0, /*maxDelayMicros=*/0, /*failPerMille=*/1000});
  ThreadPool pool;
  EXPECT_THROW(Pipe::create([] { return test::range(1, 5); }, /*capacity=*/2, pool),
               InjectedFault)
      << "a pool refusing work fails pipe creation loudly, not silently";
  inj.disarm();
  // The pool and layer remain fully usable after the storm.
  auto pipe = Pipe::create([] { return test::range(1, 3); }, /*capacity=*/2, pool);
  EXPECT_EQ(pipe->activate()->smallInt(), 1);
}

TEST(FaultStress, TryPutFailuresDoNotLoseElements) {
  REQUIRE_FAULT_HOOKS();
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});
  inj.armSite(FaultSite::QueueTryPut,
              SitePolicy{/*delayPerMille=*/0, /*maxDelayMicros=*/0, /*failPerMille=*/300});
  BlockingQueue<int> q(0);
  int ok = 0;
  for (int i = 0; i < 2000; ++i) {
    try {
      if (q.tryPut(i)) ++ok;
    } catch (const InjectedFault&) {
      // Rejected before the lock: the element must NOT be enqueued.
    }
  }
  inj.disarm();
  int drained = 0;
  while (q.tryTake()) ++drained;
  EXPECT_EQ(drained, ok) << "an injected tryPut failure half-enqueued an element";
  EXPECT_GT(ok, 0);
  EXPECT_LT(ok, 2000) << "with failPerMille=300 some injections must have fired";
}

TEST(FaultStress, BulkOpsConserveUnderBatchBoundaryDelays) {
  REQUIRE_FAULT_HOOKS();
  // Delays at the three batch-boundary sites shake the hand-off timing
  // between accumulation, flush, and bulk drain; conservation and
  // stream order must not depend on who wins those races.
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});
  for (auto site : {FaultSite::QueuePutAll, FaultSite::QueueTakeUpTo, FaultSite::PipeBatchFlush}) {
    inj.armSite(site, SitePolicy{/*delayPerMille=*/300, /*maxDelayMicros=*/200,
                                 /*failPerMille=*/0});
  }
  ThreadPool pool;
  const int kElems = 300 * stress::scale();
  auto pipe = Pipe::create([kElems] { return test::range(1, kElems); },
                           /*capacity=*/4, pool, /*batchCap=*/4);
  std::int64_t expect = 1;
  while (auto v = pipe->activate()) EXPECT_EQ(v->requireInt64(), expect++);
  EXPECT_EQ(expect, kElems + 1) << "an element was lost at a delayed batch boundary";
  inj.disarm();
  EXPECT_GT(inj.hits(FaultSite::QueuePutAll), 0u);
  EXPECT_GT(inj.hits(FaultSite::QueueTakeUpTo), 0u);
}

TEST(FaultStress, InjectedPutAllFailureIsAllOrNothing) {
  REQUIRE_FAULT_HOOKS();
  // The QueuePutAll fault point sits at entry: an injected failure must
  // reject the whole batch before any element moves — never a half-
  // published batch.
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});
  inj.armSite(FaultSite::QueuePutAll,
              SitePolicy{/*delayPerMille=*/0, /*maxDelayMicros=*/0, /*failPerMille=*/300});
  BlockingQueue<int> q(0);
  std::size_t accepted = 0;
  int attempts = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<int> batch{3 * i, 3 * i + 1, 3 * i + 2};
    try {
      accepted += q.putAll(batch);
      EXPECT_TRUE(batch.empty());
      ++attempts;
    } catch (const InjectedFault&) {
      EXPECT_EQ(batch.size(), 3u) << "an injected putAll failure half-published a batch";
    }
  }
  inj.disarm();
  std::size_t drained = 0;
  while (q.tryTake()) ++drained;
  EXPECT_EQ(drained, accepted) << "bulk-API conservation under injected failures";
  EXPECT_GT(attempts, 0);
  EXPECT_LT(attempts, 500) << "with failPerMille=300 some injections must have fired";
}

TEST(FaultStress, BatchedPipeFlushFailureDeliversAPrefixThenTheError) {
  REQUIRE_FAULT_HOOKS();
  // Inject hard failures into putAll under a batched pipe: the consumer
  // must observe a gapless, duplicate-free prefix of the stream and then
  // the injected error — a lost or reordered batch would break the
  // prefix shape.
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});
  inj.armSite(FaultSite::QueuePutAll,
              SitePolicy{/*delayPerMille=*/0, /*maxDelayMicros=*/0, /*failPerMille=*/200});
  ThreadPool pool;
  bool sawError = false;
  std::int64_t expect = 1;
  {
    auto pipe = Pipe::create([] { return test::range(1, 500); },
                             /*capacity=*/4, pool, /*batchCap=*/4);
    try {
      while (auto v = pipe->activate()) EXPECT_EQ(v->requireInt64(), expect++);
    } catch (const InjectedFault&) {
      sawError = true;
    }
  }
  inj.disarm();
  if (sawError) {
    EXPECT_LE(expect, 501) << "values past the failed flush leaked through";
  } else {
    EXPECT_EQ(expect, 501) << "no injection fired, so the full stream must arrive";
  }
  // The pool survives the storm and remains usable.
  auto pipe = Pipe::create([] { return test::range(1, 3); }, /*capacity=*/2, pool);
  EXPECT_EQ(pipe->activate()->smallInt(), 1);
}

TEST(FaultStress, MixedDelayAndFailureStormOnPool) {
  REQUIRE_FAULT_HOOKS();
  // Submit under randomized delays AND failures: accepted work always
  // runs, rejected work never does — same contract as the plain pool
  // stress, now with injected chaos on the submit path itself.
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{/*delayPerMille=*/100, /*maxDelayMicros=*/100,
                                     /*failPerMille=*/0});
  inj.armSite(FaultSite::PoolSubmit,
              SitePolicy{/*delayPerMille=*/100, /*maxDelayMicros=*/100, /*failPerMille=*/200});
  {
    ThreadPool pool;
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    onThreads(4, [&](int) {
      for (int i = 0; i < 50; ++i) {
        try {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const InjectedFault&) {
          // Rejected at the boundary — must be a no-op.
        }
      }
    });
    EXPECT_LT(accepted.load(), 200) << "some submits must have been injected away";
    ASSERT_TRUE(eventually([&] { return ran.load() == accepted.load(); }, 20000));
    pool.shutdown();
    EXPECT_EQ(ran.load(), accepted.load());
  }
  inj.disarm();
}

}  // namespace
}  // namespace congen

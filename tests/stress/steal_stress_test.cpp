// steal_stress_test.cpp — the work-stealing thread pool.
//
// The pool's correctness story has three load-bearing invariants:
// (1) liveness — a queued task is always claimable by *some* worker, no
//     matter which shard it landed on (the stealing sweep);
// (2) growth — the idle >= pending invariant survives sharding, so a
//     blocked worker can never strand a later submission;
// (3) shutdown — every accepted task runs before the workers join, even
//     tasks parked on shards no worker calls home.
//
// Named StealStress.* on purpose: CI's flake-hunt and asan repeat passes
// select the new lock-free/stealing paths with -R 'SpscRing|Steal'.
#include "concur/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "concur/blocking_queue.hpp"
#include "concur/fault_injection.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

TEST(StealStress, WorkerSubmittedTaskBehindABlockedWorkerIsStolen) {
  // Worker 0 (home shard 0) submits a task — which lands on its own
  // shard for locality — and then blocks. The helper worker the submit
  // spawned has home shard 1, so the only way the task can run is a
  // steal. This is deterministic, not probabilistic: worker homes are
  // assigned round-robin from the spawn index.
  ThreadPool pool;
  ASSERT_GE(pool.shardCount(), 2u);
  BlockingQueue<int> gate(1);
  std::atomic<bool> innerRan{false};
  pool.submit([&] {
    pool.submit([&] { innerRan = true; });
    gate.take();  // block the submitting worker until the end of the test
  });
  ASSERT_TRUE(stress::eventually([&] { return innerRan.load(); }))
      << "task on a blocked worker's home shard was never stolen";
  EXPECT_GE(pool.tasksStolen(), 1u);
  gate.close();
  pool.shutdown();
  EXPECT_EQ(pool.tasksCompleted(), 2u);
}

TEST(StealStress, ShutdownDrainsEveryShard) {
  // Quick tasks round-robined across all shards, then an immediate
  // shutdown: the drain must reach shards whose home workers were never
  // spawned.
  const int rounds = 50 * stress::scale();
  for (int r = 0; r < rounds; ++r) {
    ThreadPool pool;
    std::atomic<int> ran{0};
    const int tasks = 1 + r % 7;
    for (int i = 0; i < tasks; ++i) pool.submit([&ran] { ++ran; });
    pool.shutdown();
    EXPECT_EQ(ran.load(), tasks) << "shutdown ran every accepted task";
    EXPECT_EQ(pool.tasksCompleted(), static_cast<std::size_t>(tasks));
  }
}

TEST(StealStress, BurstsFromManyThreadsAllComplete) {
  // External submitters hash across shards round-robin while workers
  // pop/steal concurrently; every task must run exactly once.
  ThreadPool pool;
  constexpr int kThreads = 4;
  const int perThread = 200 * stress::scale();
  std::atomic<int> ran{0};
  stress::onThreads(kThreads, [&](int) {
    for (int i = 0; i < perThread; ++i) pool.submit([&ran] { ++ran; });
  });
  ASSERT_TRUE(stress::eventually([&] { return ran.load() == kThreads * perThread; }));
  pool.shutdown();
  EXPECT_EQ(ran.load(), kThreads * perThread);
  EXPECT_EQ(pool.tasksCompleted(), static_cast<std::size_t>(kThreads * perThread));
}

TEST(StealStress, GrowthInvariantSurvivesBlockedWorkersOnEveryShard) {
  // Block more workers than there are shards so every shard has at
  // least one blocked "owner", then prove later submissions still run
  // (growth) and land wherever a live worker can steal them (liveness).
  ThreadPool pool;
  BlockingQueue<int> gate(1);
  const int blocked = static_cast<int>(pool.shardCount()) + 2;
  std::atomic<int> started{0};
  for (int i = 0; i < blocked; ++i) {
    pool.submit([&] {
      ++started;
      gate.take();
    });
  }
  ASSERT_TRUE(stress::eventually([&] { return started.load() == blocked; }));
  std::atomic<int> extraRan{0};
  const int extras = 20 * stress::scale();
  for (int i = 0; i < extras; ++i) pool.submit([&extraRan] { ++extraRan; });
  ASSERT_TRUE(stress::eventually([&] { return extraRan.load() == extras; }))
      << "a submission was stranded behind blocked workers";
  gate.close();
  pool.shutdown();
}

TEST(StealStress, NestedSubmitChainsDoNotDeadlock) {
  // Each task submits its successor from a worker thread (own-shard
  // affinity), building a chain that crosses the steal path whenever
  // the submitting worker grabs a different next task first.
  ThreadPool pool;
  const int depth = 300 * stress::scale();
  std::atomic<int> step{0};
  std::function<void()> next = [&] {
    if (step.fetch_add(1) + 1 < depth) pool.submit(next);
  };
  pool.submit(next);
  ASSERT_TRUE(stress::eventually([&] { return step.load() == depth; }));
  pool.shutdown();
  EXPECT_EQ(pool.tasksCompleted(), static_cast<std::size_t>(depth));
}

TEST(StealStress, FaultInjectionWidensTheStealWindows) {
  if (!testing::FaultInjector::compiledIn()) {
    GTEST_SKIP() << "fault hooks not compiled in (CONGEN_FAULT_INJECTION off)";
  }
  // Delays at PoolSteal/PoolTaskRun shuffle which worker claims which
  // task; failures at PoolSubmit exercise the all-or-nothing rejection
  // path (a thrown submit must not enqueue). Accepted tasks must still
  // all run exactly once.
  testing::SitePolicy policy;
  policy.delayPerMille = 100;
  policy.maxDelayMicros = 300;
  policy.failPerMille = 30;
  testing::ScopedFaultInjection arm(stress::seed() + 7, policy);
  ThreadPool pool;
  std::atomic<int> ran{0};
  int accepted = 0;
  const int attempts = 400 * stress::scale();
  for (int i = 0; i < attempts; ++i) {
    try {
      pool.submit([&ran] { ++ran; });
      ++accepted;
    } catch (const testing::InjectedFault&) {
      // Rejected before enqueue; must never run.
    }
  }
  ASSERT_TRUE(stress::eventually([&] { return ran.load() == accepted; }));
  testing::FaultInjector::instance().disarm();  // clean joins for shutdown
  pool.shutdown();
  EXPECT_EQ(ran.load(), accepted) << "a rejected submit ran anyway, or an accepted one was lost";
  EXPECT_EQ(pool.tasksCompleted(), static_cast<std::size_t>(accepted));
}

}  // namespace
}  // namespace congen

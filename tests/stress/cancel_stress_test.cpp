// cancel_stress_test.cpp — the cancellation subsystem under contention
// and injected faults: cancel-vs-put, cancel-vs-takeUpTo, deadline
// expiry racing a batch flush, and the mapReduce retry path with chunk
// bodies being killed. The QueueTimedWait and CancelSignal fault sites
// (delay-only) stretch exactly the windows these races live in.
#include "concur/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "../testutil.hpp"
#include "builtins/builtins.hpp"
#include "concur/blocking_queue.hpp"
#include "concur/fault_injection.hpp"
#include "concur/pipe.hpp"
#include "par/data_parallel.hpp"
#include "runtime/error.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using namespace std::chrono_literals;
using stress::eventually;
using testing::FaultInjector;
using testing::FaultSite;
using testing::ScopedFaultInjection;
using testing::SitePolicy;

#define REQUIRE_FAULT_HOOKS()                                               \
  if (!FaultInjector::compiledIn()) {                                       \
    GTEST_SKIP() << "built without CONGEN_FAULT_INJECTION — nothing to do"; \
  }

/// Arm delay-only jitter at every site (failures stay off) so the
/// cancel/wait windows get stretched at random points.
void armDelays() {
  FaultInjector::instance().arm(stress::seed(),
                                SitePolicy{/*delayPerMille=*/200, /*maxDelayMicros=*/150,
                                           /*failPerMille=*/0});
}

TEST(CancelStress, CancelRacesBlockedPut) {
  const int rounds = 200 * stress::scale();
  const bool hooks = FaultInjector::compiledIn();
  if (hooks) armDelays();
  for (int i = 0; i < rounds; ++i) {
    BlockingQueue<int> q(1);
    StopSource s;
    ASSERT_EQ(q.putFor(0, s.token()), QueueOpStatus::kOk);  // full
    std::atomic<int> done{0};
    std::thread producer([&] {
      // Blocked put racing the cancel below: the only acceptable
      // outcomes are kCancelled (cancel won) — never a hang.
      EXPECT_EQ(q.putFor(1, s.token()), QueueOpStatus::kCancelled);
      ++done;
    });
    if (i % 2 == 0) std::this_thread::yield();
    s.requestStop();
    producer.join();
    EXPECT_EQ(done.load(), 1);
    EXPECT_EQ(q.size(), 1u);
  }
  if (hooks) FaultInjector::instance().disarm();
}

TEST(CancelStress, CancelRacesTakeUpTo) {
  const int rounds = 200 * stress::scale();
  const bool hooks = FaultInjector::compiledIn();
  if (hooks) armDelays();
  for (int i = 0; i < rounds; ++i) {
    BlockingQueue<int> q(8);
    StopSource s;
    // Half the rounds leave elements buffered: a cancelled consumer
    // must abandon them (kCancelled beats element transfer).
    const bool buffered = i % 2 == 0;
    if (buffered) {
      ASSERT_EQ(q.putFor(7, CancelToken{}), QueueOpStatus::kOk);
    }
    std::thread consumer([&] {
      std::vector<int> out;
      const auto status = q.takeUpToFor(out, 4, s.token());
      if (status == QueueOpStatus::kOk) {
        // The take won the race before the cancel landed.
        EXPECT_FALSE(out.empty());
      } else {
        EXPECT_EQ(status, QueueOpStatus::kCancelled);
        EXPECT_TRUE(out.empty());
      }
    });
    if (i % 3 == 0) std::this_thread::yield();
    s.requestStop();
    consumer.join();
  }
  if (hooks) FaultInjector::instance().disarm();
}

TEST(CancelStress, DeadlineExpiryRacesBatchFlush) {
  // A batched pipe keeps flushing while the consumer uses deadlines so
  // short they constantly expire mid-flush. Timed-out activations must
  // never finish the pipe: every produced value is eventually seen
  // exactly once, in order.
  const int rounds = 20 * stress::scale();
  const bool hooks = FaultInjector::compiledIn();
  if (hooks) armDelays();
  for (int r = 0; r < rounds; ++r) {
    ThreadPool pool;
    constexpr std::int64_t kCount = 300;
    auto pipe = Pipe::create([] { return test::range(1, kCount); },
                             /*capacity=*/8, pool, /*batchCap=*/4);
    std::int64_t expect = 1;
    int timeouts = 0;
    while (expect <= kCount) {
      auto v = pipe->activateUntil(std::chrono::steady_clock::now() + 200us);
      if (!v) {
        ++timeouts;
        ASSERT_LT(timeouts, 2000000) << "livelock: value " << expect << " never arrived";
        continue;
      }
      ASSERT_EQ(v->requireInt64(), expect) << "deadline expiry must not drop or reorder";
      ++expect;
    }
    EXPECT_FALSE(pipe->activate().has_value()) << "stream ends cleanly after the last value";
  }
  if (hooks) FaultInjector::instance().disarm();
}

TEST(CancelStress, FourStageChainCancelUnderJitter) {
  const int rounds = 30 * stress::scale();
  const bool hooks = FaultInjector::compiledIn();
  if (hooks) armDelays();
  for (int r = 0; r < rounds; ++r) {
    ThreadPool pool;
    auto infinite = []() -> GenPtr {
      return CallbackGen::create([]() -> CallbackGen::Puller {
        std::int64_t i = 0;
        return [i]() mutable -> std::optional<Value> { return Value::integer(++i); };
      });
    };
    auto p1 = Pipe::create(infinite, 2, pool, 1);
    auto p2 = Pipe::create(
        [p1]() -> GenPtr { return PromoteGen::create(ConstGen::create(Value::coexpr(p1))); }, 2,
        pool, 1);
    auto p3 = Pipe::create(
        [p2]() -> GenPtr { return PromoteGen::create(ConstGen::create(Value::coexpr(p2))); }, 2,
        pool, 1);
    auto p4 = Pipe::create(
        [p3]() -> GenPtr { return PromoteGen::create(ConstGen::create(Value::coexpr(p3))); }, 2,
        pool, 1);
    p1->cancelWith(p2->cancelToken());
    p2->cancelWith(p3->cancelToken());
    p3->cancelWith(p4->cancelToken());
    // Vary the cut point: sometimes cancel while queues are filling,
    // sometimes after a consumed prefix, sometimes at full backpressure.
    if (r % 3 == 1) {
      for (int k = 0; k < 5; ++k) p4->activate();
    } else if (r % 3 == 2) {
      ASSERT_TRUE(eventually([&] { return p4->queue()->size() >= 2; }));
    }
    p4->cancel();
    pool.shutdown();  // hangs the test (TIMEOUT 300) if any producer stays blocked
    EXPECT_EQ(pool.tasksCompleted(), 4u) << "round " << r;
    EXPECT_TRUE(p1->queue()->closed());
    EXPECT_TRUE(p4->queue()->closed());
  }
  if (hooks) FaultInjector::instance().disarm();
}

TEST(CancelStress, NewFaultSitesAreHit) {
  REQUIRE_FAULT_HOOKS();
  ScopedFaultInjection arm(stress::seed(), SitePolicy{});  // observe only
  BlockingQueue<int> q(2);
  StopSource s;
  std::thread producer([&] {
    for (int i = 0; i < 8; ++i) {
      if (q.putFor(i, s.token()) != QueueOpStatus::kOk) return;
    }
  });
  std::this_thread::sleep_for(10ms);
  s.requestStop();
  producer.join();
  auto& inj = FaultInjector::instance();
  EXPECT_GT(inj.hits(FaultSite::QueueTimedWait), 0u) << "putFor hit the timed-wait site";
  EXPECT_GT(inj.hits(FaultSite::CancelSignal), 0u) << "requestStop hit the cancel site";
}

TEST(CancelStress, MapReduceSurvivesChunkKillsViaRetry) {
  REQUIRE_FAULT_HOOKS();
  // Kill roughly 30% of producer-side queue publishes: chunk bodies die
  // mid-stream, and the bounded retry must still produce the exact
  // in-order reduction. Only producer-side sites are armed — consumer
  // ops and pool submit stay clean so the dead pipe can be rebuilt.
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});  // all sites observe-only...
  const SitePolicy kill{/*delayPerMille=*/100, /*maxDelayMicros=*/50, /*failPerMille=*/300};
  inj.armSite(FaultSite::QueuePut, kill);
  inj.armSite(FaultSite::QueuePutAll, kill);

  auto square = builtins::makeNative(
      "square", [](std::vector<Value>& a) { return ops::mul(a.at(0), a.at(0)); });
  auto add = builtins::makeNative(
      "add", [](std::vector<Value>& a) { return ops::add(a.at(0), a.at(1)); });
  DataParallel dp(3, /*pipeCapacity=*/4, ThreadPool::global(), /*pipeBatch=*/2);
  dp.withRetry(/*maxRetries=*/64, /*backoffBaseMicros=*/1);
  auto gen = dp.mapReduce(square, [] { return test::range(1, 30); }, add, Value::integer(0));
  std::vector<std::int64_t> got;
  while (auto v = gen->nextValue()) got.push_back(v->requireInt64("reduction"));
  inj.disarm();

  // chunks of 3 over 1..30 → 10 in-order chunk sums of squares.
  std::vector<std::int64_t> expected;
  for (int c = 0; c < 10; ++c) {
    std::int64_t sum = 0;
    for (int i = c * 3 + 1; i <= c * 3 + 3; ++i) sum += static_cast<std::int64_t>(i) * i;
    expected.push_back(sum);
  }
  EXPECT_EQ(got, expected) << "retries must reproduce exact in-order results";
  EXPECT_GT(inj.failuresInjected(), 0u) << "the run must actually have killed chunk bodies";
}

TEST(CancelStress, RetryBudgetExhaustionSurfacesOneTypedError) {
  REQUIRE_FAULT_HOOKS();
  // Kill every producer publish: no retry budget survives, and the
  // consumer must see a single typed IconError 802 — not an InjectedFault
  // and not a hang.
  auto& inj = FaultInjector::instance();
  inj.arm(stress::seed(), SitePolicy{});
  inj.armSite(FaultSite::QueuePut, SitePolicy{0, 0, /*failPerMille=*/1000});
  inj.armSite(FaultSite::QueuePutAll, SitePolicy{0, 0, /*failPerMille=*/1000});

  auto identity =
      builtins::makeNative("id", [](std::vector<Value>& a) -> std::optional<Value> { return a.at(0); });
  DataParallel dp(4, 4, ThreadPool::global(), 1);
  dp.withRetry(3, 1);
  auto gen = dp.mapFlat(identity, [] { return test::range(1, 8); });
  try {
    while (gen->nextValue()) {
    }
    inj.disarm();
    FAIL() << "expected IconError 802";
  } catch (const IconError& e) {
    inj.disarm();
    EXPECT_EQ(e.number(), 802);
  }
}

}  // namespace
}  // namespace congen

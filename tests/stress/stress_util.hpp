// stress_util.hpp — shared helpers for the concurrency stress suite.
//
// Every stress test is seeded: CONGEN_STRESS_SEED in the environment
// overrides the default, and failures should be reported with the seed
// so a schedule is reproducible modulo OS scheduling. Iteration counts
// are deliberately modest — the suite must stay fast enough to run
// under TSan on a single-core CI runner — and can be raised with
// CONGEN_STRESS_SCALE for soak runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace congen::stress {

/// The deterministic seed for this run (env CONGEN_STRESS_SEED or 42).
inline std::uint64_t seed() {
  if (const char* s = std::getenv("CONGEN_STRESS_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 42;
}

/// Multiplier for iteration counts (env CONGEN_STRESS_SCALE or 1).
inline int scale() {
  if (const char* s = std::getenv("CONGEN_STRESS_SCALE")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 1;
}

/// Spin-wait with a deadline; returns whether the condition became true.
inline bool eventually(const std::function<bool()>& cond, int timeoutMs = 10000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Run `body(i)` on `n` threads and join them all.
inline void onThreads(int n, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads.emplace_back([&body, i] { body(i); });
  for (auto& t : threads) t.join();
}

}  // namespace congen::stress

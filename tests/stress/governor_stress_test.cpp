// governor_stress_test.cpp — the resource governor under concurrency:
// many pipelines racing one shared heap budget, quota trips landing
// mid-stream (the delivered prefix must still arrive), and supervisor
// hard teardown mid-drive. conservation_env.cpp rides along, so every
// scenario here is also checked against the queue conservation
// invariants at process teardown — a trip or a teardown that loses or
// double-counts elements fails the suite even if the test body passes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "interp/interpreter.hpp"
#include "kernel/arena.hpp"
#include "runtime/error.hpp"
#include "runtime/governor.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using governor::Limits;
using governor::ResourceGovernor;

TEST(GovernorStress, RacingHeapChargesBalanceExactly) {
  // 8 threads hammer one governor through the thread-local batcher with
  // pass-through-sized arena blocks (> kMaxBytes, so nothing parks in a
  // bin and every charge has a matching credit). After the scopes pop —
  // flushing each thread's pending batch — the shared ledger must read
  // exactly zero: a lost update here means a budget that drifts.
  Limits limits;
  limits.maxHeapBytes = 1u << 30;  // active, never trips
  auto gov = ResourceGovernor::create(limits);
  stress::onThreads(8, [&](int) {
    governor::ScopedGovernor governed(gov);
    for (int i = 0; i < 20000 * stress::scale(); ++i) {
      void* p = arena::allocate(1024);
      arena::deallocate(p, 1024);
    }
  });
  EXPECT_EQ(gov->usage().heapReserved, 0u);
  EXPECT_EQ(gov->usage().quotaTrips, 0u);
}

TEST(GovernorStress, PipelinesRacingASharedHeapBudgetTripCleanly) {
  // Four pipe producers allocate string payloads against one
  // interpreter's heap budget while the consumer retains everything it
  // drains. The budget is far below what the full streams need, so some
  // producer trips 811 mid-stream — on a pool thread, under the
  // reinstalled governor — and the error must surface at the consumer
  // after the already-published prefix was delivered.
  for (int round = 0; round < 3 * stress::scale(); ++round) {
    interp::Interpreter::Options opts;
    opts.backend = interp::Backend::kTree;
    opts.quotas.maxHeapBytes = 256u << 10;
    interp::Interpreter interp{opts};
    // 20 bytes of prefix pushes every element past the SSO capacity, so
    // each one is a charged heap payload.
    interp.load("def spawn() { return |> (\"yyyyyyyyyyyyyyyyyyyy\" || (1 to 1000000)); }");
    auto gen = interp.eval("!(spawn() | spawn() | spawn() | spawn())");
    std::vector<Value> retained;  // keeps drained payloads live: the budget must fill
    int errorNumber = -1;
    try {
      while (auto v = gen->nextValue()) retained.push_back(*v);
    } catch (const IconError& e) {
      errorNumber = e.number();
    }
    EXPECT_EQ(errorNumber, 811) << "round " << round;
    EXPECT_GT(retained.size(), 0u) << "the delivered prefix reaches the consumer";
    retained.clear();
    gen.reset();
    // The session is degraded, not wedged: lifting the budget revives it.
    interp.resourceGovernor()->setLimit(governor::Budget::Heap, 0);
    EXPECT_EQ(interp.evalOne("! |> 42")->smallInt(), 42) << "round " << round;
  }
}

TEST(GovernorStress, SupervisorHardTeardownContainsARunawaySession) {
  // A runaway script that keeps minting pipes: the soft stop cancels
  // each live pipe (its drain fails fast), the loop spins on, and only
  // the hard teardown — flipping the fuel flag — stops the session with
  // 816. Conservation across the torn-down pipes is checked at process
  // teardown by conservation_env.
  auto& supervisor = governor::Supervisor::global();
  const std::uint64_t hard0 = supervisor.hardTeardownsIssued();
  for (int round = 0; round < 3 * stress::scale(); ++round) {
    interp::Interpreter::Options opts;
    opts.backend = interp::Backend::kTree;
    opts.governed = true;
    interp::Interpreter interp{opts};
    interp.load("def spin() { local g; while 1 do { g := |> (1 to 1000000); every !g do 0; } }");
    auto watch = supervisor.watch(interp.resourceGovernor(), std::chrono::milliseconds(30),
                                  std::chrono::milliseconds(90));
    int errorNumber = -1;
    try {
      interp.evalAll("spin()");
    } catch (const IconError& e) {
      errorNumber = e.number();
    }
    EXPECT_EQ(errorNumber, 816) << "round " << round;
  }
  EXPECT_GE(supervisor.hardTeardownsIssued() - hard0, 3u);
  // The shared pool outlives the torn-down sessions.
  interp::Interpreter fresh;
  EXPECT_EQ(fresh.evalOne("! |> 7")->smallInt(), 7);
}

TEST(GovernorStress, AdmissionShedsConcurrentArrivalsDeterministically) {
  // Fill the session table, then race 4 construction attempts: every
  // one must shed with a typed 815 (no torn admit), and once the table
  // drains the same construction succeeds.
  auto& admission = governor::Admission::global();
  const auto saved = admission.config();
  governor::Admission::Config config;
  config.maxSessions = 4;
  admission.configure(config);

  Limits limits;
  limits.maxFuel = 1000;
  std::vector<std::shared_ptr<ResourceGovernor>> held;
  for (int i = 0; i < 4; ++i) held.push_back(ResourceGovernor::create(limits));

  const std::uint64_t sheds0 = admission.sheds();
  std::atomic<int> refused{0};
  stress::onThreads(4, [&](int) {
    for (int i = 0; i < 50 * stress::scale(); ++i) {
      try {
        interp::Interpreter::Options opts;
        opts.quotas.maxFuel = 1000;
        interp::Interpreter interp{opts};
        ADD_FAILURE() << "admitted past a full session table";
      } catch (const IconError& e) {
        EXPECT_EQ(e.number(), 815);
        refused.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(refused.load(), 4 * 50 * stress::scale());
  EXPECT_EQ(admission.sheds() - sheds0, static_cast<std::uint64_t>(refused.load()));
  EXPECT_EQ(admission.liveSessions(), 4u);

  held.clear();
  {
    interp::Interpreter::Options opts;
    opts.quotas.maxFuel = 100000;
    interp::Interpreter interp{opts};  // the freed slots admit again
    EXPECT_EQ(interp.evalOne("1 + 1")->smallInt(), 2);
  }
  admission.configure(saved);
}

}  // namespace
}  // namespace congen

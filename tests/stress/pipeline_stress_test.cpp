// pipeline_stress_test.cpp — torture for the Pipeline layer (Fig. 2):
// deep stage chains on tiny queues, abandoning a pipeline mid-drain
// (which must cascade the close upstream through every stage), and many
// pipelines draining concurrently over one pool.
#include "par/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "../testutil.hpp"
#include "builtins/builtins.hpp"
#include "par/data_parallel.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using stress::eventually;
using stress::onThreads;
using test::ints;

ProcPtr incProc() {
  return builtins::makeNative(
      "inc", [](std::vector<Value>& a) { return ops::add(a.at(0), Value::integer(1)); });
}

TEST(PipelineStress, DeepChainOnTinyQueues) {
  // 16 stages of +1 over capacity-1 queues: 17 threads in a relay where
  // every handoff is a rendezvous. Any lost wakeup deadlocks the chain.
  ThreadPool pool;
  Pipeline p(/*pipeCapacity=*/1, pool);
  const int depth = 16;
  for (int i = 0; i < depth; ++i) p.stage(incProc());
  const auto got = ints(p.build([] { return test::range(0, 199); }));
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i + depth) << "relay reordered or dropped";
  }
}

TEST(PipelineStress, AbandonMidDrainCascadesUpstream) {
  // Drain three values from a deep pipeline over an endless source, then
  // drop the generator. The final pipe's close must propagate: each
  // stage's put() fails, it drops its upstream pipe, and that close
  // releases the next producer up — all the way to the source.
  ThreadPool pool;
  const int rounds = 25 * stress::scale();
  std::size_t expectedTasks = 0;
  for (int round = 0; round < rounds; ++round) {
    Pipeline p(/*pipeCapacity=*/2, pool);
    p.stage(incProc()).stage(incProc()).stage(incProc());
    {
      auto gen = p.build([] { return test::range(1, 10000000); });
      for (int i = 1; i <= 3; ++i) {
        auto v = gen->nextValue();
        ASSERT_TRUE(v.has_value());
        ASSERT_EQ(v->requireInt64(), i + 3);
      }
      // gen (and the last pipe) dropped here mid-stream.
    }
    expectedTasks += 4;  // source + 3 stages
    ASSERT_TRUE(eventually([&] { return pool.tasksCompleted() == expectedTasks; }, 20000))
        << "round " << round << ": a stage survived abandonment — close did not cascade";
  }
}

TEST(PipelineStress, ManyPipelinesConcurrently) {
  // 4 threads × pipelines over one pool; each checks its own stream
  // end-to-end while the pool multiplexes all producers.
  ThreadPool pool;
  onThreads(4, [&](int t) {
    for (int round = 0; round < 10 * stress::scale(); ++round) {
      Pipeline p(/*pipeCapacity=*/4, pool);
      p.stage(incProc()).stage(incProc());
      const int base = t * 1000;
      const auto got = ints(p.build([base] { return test::range(base, base + 49); }));
      ASSERT_EQ(got.size(), 50u);
      for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)], base + i + 2);
      }
    }
  });
}

TEST(PipelineStress, LastInlineUnderConcurrency) {
  ThreadPool pool;
  onThreads(4, [&](int t) {
    for (int round = 0; round < 10 * stress::scale(); ++round) {
      Pipeline p(/*pipeCapacity=*/1, pool);
      p.stage(incProc()).stage(incProc());
      const int base = t * 100;
      const auto got = ints(p.buildLastInline([base] { return test::range(base, base + 19); }));
      ASSERT_EQ(got.size(), 20u);
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)], base + i + 2);
      }
    }
  });
}

TEST(PipelineStress, MapReduceStormOverSharedPool) {
  // DataParallel spawns one pipe per chunk; drive several mapReduce
  // drains concurrently so chunk pipes from different computations
  // interleave on the same workers.
  auto square = builtins::makeNative(
      "square", [](std::vector<Value>& a) { return ops::mul(a.at(0), a.at(0)); });
  auto add = builtins::makeNative(
      "add", [](std::vector<Value>& a) { return ops::add(a.at(0), a.at(1)); });
  onThreads(4, [&](int) {
    for (int round = 0; round < 5 * stress::scale(); ++round) {
      DataParallel dp(/*chunkSize=*/7);
      auto gen = dp.mapReduce(square, [] { return test::range(1, 60); }, add, Value::integer(0));
      std::int64_t total = 0;
      while (auto v = gen->nextValue()) total += v->requireInt64();
      ASSERT_EQ(total, 73810) << "sum of squares 1..60";
    }
  });
}

}  // namespace
}  // namespace congen

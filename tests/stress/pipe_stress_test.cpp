// pipe_stress_test.cpp — torture for the |> proxy: abandon-mid-stream
// storms, refresh (^) while the producer is blocked on a full queue,
// concurrent consumers over a shared pool, and producer-error storms.
// The lifecycle rules under test are the three in docs/INTERNALS.md §3.
#include "concur/pipe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "../testutil.hpp"
#include "interp/interpreter.hpp"
#include "runtime/error.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using stress::eventually;
using stress::onThreads;

/// An endless generator of 1s — only queue-close can stop its producer.
GenPtr endless() {
  return CallbackGen::create([]() -> CallbackGen::Puller {
    return []() -> std::optional<Value> { return Value::integer(1); };
  });
}

/// Counts live producer bodies via shared_ptr use-count-free signalling:
/// the factory bumps `alive` per built body and the puller's destructor
/// is not observable, so we instead track values produced.
GenPtr counting(std::atomic<std::int64_t>& produced, std::int64_t limit = -1) {
  return CallbackGen::create([&produced, limit]() -> CallbackGen::Puller {
    std::int64_t n = 0;
    return [&produced, limit, n]() mutable -> std::optional<Value> {
      if (limit >= 0 && n >= limit) return std::nullopt;
      produced.fetch_add(1, std::memory_order_relaxed);
      return Value::integer(++n);
    };
  });
}

TEST(PipeStress, AbandonMidStreamStorm) {
  // Create, take one value, drop — hundreds of times on a private pool.
  // Each destruction closes the queue, which must retire the producer;
  // if any producer leaked, the final counter would keep climbing and
  // the pool teardown below would hang a worker.
  ThreadPool pool;
  std::atomic<std::int64_t> produced{0};
  const int rounds = 200 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    auto pipe = Pipe::create([&produced] { return counting(produced); },
                             /*capacity=*/2, pool);
    ASSERT_TRUE(pipe->activate().has_value());
  }
  // All producers are gone once every submitted task completed.
  ASSERT_TRUE(eventually(
      [&] { return pool.tasksCompleted() == static_cast<std::size_t>(rounds); }, 20000))
      << "an abandoned pipe left its producer running";
  const auto settled = produced.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(produced.load(), settled) << "no producer survived abandonment";
}

TEST(PipeStress, AbandonFromManyThreads) {
  // The abandonment storm again, but with the consumers themselves on
  // different threads sharing one pool — destruction (queue close) races
  // other pipes' put/take traffic.
  ThreadPool pool;
  std::atomic<int> consumed{0};
  const int perThread = 50 * stress::scale();
  onThreads(4, [&](int) {
    for (int i = 0; i < perThread; ++i) {
      auto pipe = Pipe::create(endless, /*capacity=*/1, pool);
      if (pipe->activate()) consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(consumed.load(), 4 * perThread);
  ASSERT_TRUE(eventually(
      [&] { return pool.tasksCompleted() == static_cast<std::size_t>(4 * perThread); }, 20000));
}

TEST(PipeStress, RefreshWhileProducerBlocked) {
  // ^p while p's producer is wedged against a full capacity-1 queue: the
  // refreshed pipe is a *new* producer over a fresh body; the old one
  // must keep its position and still be drainable or abandonable.
  ThreadPool pool;
  const int rounds = 50 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    auto pipe = Pipe::create([] { return test::range(1, 1000000); }, /*capacity=*/1, pool);
    ASSERT_EQ(pipe->activate()->smallInt(), 1);
    // Producer is wedged ahead: the capacity-1 queue refilled behind
    // the first take, so the next put() is blocked.
    auto fresh = rcStaticCast<Pipe>(pipe->refreshed());
    EXPECT_EQ(fresh->activate()->smallInt(), 1) << "^p restarts from scratch";
    EXPECT_EQ(pipe->activate()->smallInt(), 2) << "original keeps its position";
    // Both dropped here with blocked producers; close must release both.
  }
  ASSERT_TRUE(eventually(
      [&] { return pool.tasksCompleted() == static_cast<std::size_t>(2 * rounds); }, 20000))
      << "a refresh-abandoned producer leaked";
}

TEST(PipeStress, ConcurrentConsumersDistinctPipes) {
  // 4 consumer threads, each draining its own stream of pipes from a
  // shared pool; results must be per-pipe exact despite the shared
  // worker set and queue traffic.
  ThreadPool pool;
  onThreads(4, [&](int t) {
    for (int round = 0; round < 10 * stress::scale(); ++round) {
      const int base = t * 10000 + round * 100;
      auto pipe = Pipe::create(
          [base] { return test::range(base, base + 99); }, /*capacity=*/8, pool);
      std::int64_t expect = base;
      while (auto v = pipe->activate()) {
        ASSERT_EQ(v->requireInt64(), expect) << "cross-pipe interference";
        ++expect;
      }
      ASSERT_EQ(expect, base + 100) << "stream truncated";
    }
  });
}

TEST(PipeStress, ErrorStormSurfacesExactlyOncePerPipe) {
  ThreadPool pool;
  onThreads(4, [&](int) {
    for (int round = 0; round < 25 * stress::scale(); ++round) {
      auto pipe = Pipe::create(
          []() -> GenPtr {
            return CallbackGen::create([]() -> CallbackGen::Puller {
              int n = 0;
              return [n]() mutable -> std::optional<Value> {
                if (++n > 3) throw errDivisionByZero();
                return Value::integer(n);
              };
            });
          },
          /*capacity=*/1, pool);
      int values = 0;
      int errors = 0;
      while (true) {
        try {
          auto v = pipe->activate();
          if (!v) break;
          ++values;
        } catch (const IconError&) {
          ++errors;
          break;
        }
      }
      EXPECT_EQ(values, 3);
      EXPECT_EQ(errors, 1) << "the producer error crosses to this consumer exactly once";
    }
  });
}

TEST(PipeStress, FutureFanOut) {
  // Many futures resolved from many threads against the global pool —
  // the capacity-1 mailbox pattern at scale.
  onThreads(4, [&](int t) {
    for (int i = 0; i < 25 * stress::scale(); ++i) {
      const std::int64_t expected = t * 1000 + i;
      FutureValue future([expected]() -> GenPtr {
        return ConstGen::create(Value::integer(expected));
      });
      auto v = future.get();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(v->requireInt64(), expected);
      ASSERT_EQ(future.get()->requireInt64(), expected) << "idempotent get";
    }
  });
}

TEST(PipeStress, DeepRecursivePipeNesting) {
  // A pipe whose body drains another pipe, stacked 12 deep: every level
  // is a producer blocked on its child's queue — the pathology the
  // cached-growth pool exists for (INTERNALS §3).
  ThreadPool pool;
  const int depth = 12;
  GenFactory factory = [] { return test::range(1, 20); };
  for (int level = 0; level < depth; ++level) {
    factory = [factory, &pool]() -> GenPtr {
      auto inner = Pipe::create(factory, /*capacity=*/1, pool);
      return CallbackGen::create([inner]() -> CallbackGen::Puller {
        return [inner]() -> std::optional<Value> { return inner->activate(); };
      });
    };
  }
  auto top = Pipe::create(factory, /*capacity=*/1, pool);
  std::int64_t expect = 1;
  while (auto v = top->activate()) {
    ASSERT_EQ(v->requireInt64(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 21) << "all 20 values crossed " << depth << " thread hops";
}

class PipeStressBackend : public ::testing::TestWithParam<interp::Backend> {};

TEST_P(PipeStressBackend, InterpreterTeardownReleasesGlobalPipes) {
  // Regression: a pipe stored in an interpreter *global* (`p := |> e`)
  // cycles back to the global scope through its refresh factory, so
  // neither was ever destroyed — the producer stayed blocked in put()
  // and process exit deadlocked when the global pool's destructor tried
  // to join it. ~Interpreter now clears the global scope to break the
  // cycle; the proof that it worked is the producer's task completing.
  auto& pool = ThreadPool::global();
  const auto before = pool.tasksCompleted();
  {
    interp::Interpreter::Options opts;
    opts.backend = GetParam();
    interp::Interpreter interp{opts};
    // The producer outruns the queue capacity and blocks mid-stream.
    interp.evalOne("p := |> (1 to 1000000)");
    ASSERT_EQ(interp.evalOne("@p")->requireInt64(), 1);
  }
  ASSERT_TRUE(eventually([&] { return pool.tasksCompleted() >= before + 1; }))
      << "interpreter teardown left the stored pipe's producer blocked";
}

INSTANTIATE_TEST_SUITE_P(Backends, PipeStressBackend,
                         ::testing::Values(interp::Backend::kTree, interp::Backend::kVm),
                         [](const auto& info) {
                           return info.param == interp::Backend::kVm ? "vm" : "tree";
                         });

}  // namespace
}  // namespace congen

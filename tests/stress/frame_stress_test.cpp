// frame_stress_test.cpp — pooled procedure bodies and slot frames under
// concurrency. Pipes and mapReduce invoke the same procedures from pool
// threads, so parked body trees are taken and re-parked across threads;
// every round must see fully rebound frames (no state bleeding between
// activations) and the sanitizer presets must stay clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "interp/interpreter.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

std::vector<std::int64_t> drainInts(interp::Interpreter& interp, const std::string& src) {
  std::vector<std::int64_t> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.requireInt64("stress"));
  return out;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Both execution backends recycle the same pooled frames (the VM's
/// machines live inside the same BodyRootGen pooling the tree uses), so
/// the whole suite runs once per backend.
class FrameStress : public ::testing::TestWithParam<interp::Backend> {
 protected:
  static interp::Interpreter::Options opts() {
    interp::Interpreter::Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(FrameStress, PipesRecycleBodiesAcrossThreads) {
  // Each round drives two pipe stages: sq() runs on a pool thread, so
  // its parked body is recycled between the consumer and pool threads.
  interp::Interpreter interp{opts()};
  interp.load("def sq(x) { local y; y := x * x; return y; }");
  const int rounds = 20 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    std::int64_t sum = 0;
    for (const auto v : drainInts(interp, "! |> sq( ! |> (1 to 20) )")) sum += v;
    ASSERT_EQ(sum, 2870) << "round " << round << ": a recycled frame leaked state";
  }
}

TEST_P(FrameStress, MapReduceRecyclesFramesAcrossThreads) {
  // The Fig. 4 program: every round spawns one pipe per chunk, and each
  // pipe body calls square/add — poolable procedures — from its own
  // thread. Rounds must agree exactly; a body handed to two call sites
  // or a frame rebound under a live reader would corrupt the sums.
  interp::Interpreter interp{opts()};
  interp.load(readFile(std::string(CONGEN_SOURCE_DIR) + "/examples/scripts/mapreduce.jn"));
  const std::vector<std::int64_t> expected{14, 77, 194, 100};
  const int rounds = 15 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    ASSERT_EQ(drainInts(interp, "mapReduce(square, source, add, 0)"), expected)
        << "round " << round;
  }
}

TEST_P(FrameStress, ConcurrentInterpretersShareInternedTables) {
  // Independent interpreters on independent threads still share the
  // process-wide atom table, builtin constant table, and (thread-cached)
  // node arena; hammer all three from racing compiles and pipe runs.
  std::atomic<int> failures{0};
  stress::onThreads(4, [&](int t) {
    interp::Interpreter interp{opts()};
    interp.load("def dbl(x) { local s; s := \"ab\"; return x + x + *s; }");
    for (int round = 0; round < 10 * stress::scale(); ++round) {
      std::int64_t sum = 0;
      for (const auto& v : interp.evalAll("! |> dbl( ! |> (1 to 10) )")) {
        sum += v.requireInt64("stress");
      }
      if (sum != 130) {
        failures.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    (void)t;
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, FrameStress,
                         ::testing::Values(interp::Backend::kTree, interp::Backend::kVm),
                         [](const auto& info) {
                           return info.param == interp::Backend::kVm ? "vm" : "tree";
                         });

}  // namespace
}  // namespace congen

// conservation_env.cpp — a gtest global Environment linked into EVERY
// stress binary (see congen_stress_test in CMakeLists.txt). It turns the
// metrics registry on before the first test and, at process teardown,
// asserts the queue conservation identities over the whole run:
//
//   put.elements + put.batch_elements ==
//       take.elements + take.batch_elements + depth + dropped_on_close
//
//   put.batch_size.sum == put.batch_elements
//   put.batch_size.count == put.batches
//
// Because every transfer-path update happens under the owning queue's
// lock, these hold exactly — any drift is a lost or double-counted
// element somewhere in the concurrent runtime, which is precisely the
// class of bug the stress suite exists to catch (and, under the tsan /
// asan-ubsan presets, the class sanitizers cannot see: a logically
// dropped element is not a data race).
//
// Teardown quiesces first: abandoned pipes retire their producers
// asynchronously on the global pool, so the identities are polled until
// stable rather than read once.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/runtime_stats.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

struct Totals {
  std::uint64_t put = 0;
  std::uint64_t take = 0;
  std::uint64_t dropped = 0;
  std::int64_t depth = 0;
  std::uint64_t batchSizeSum = 0;
  std::uint64_t batchSizeCount = 0;
  std::uint64_t putBatches = 0;
  std::uint64_t putBatchElements = 0;

  static Totals read() {
    auto& s = obs::QueueStats::get();
    Totals t;
    t.put = s.putElements.value() + s.putBatchElements.value();
    t.take = s.takeElements.value() + s.takeBatchElements.value();
    t.dropped = s.droppedOnClose.value();
    t.depth = s.depth.value();
    t.batchSizeSum = s.putBatchSize.sum();
    t.batchSizeCount = s.putBatchSize.count();
    t.putBatches = s.putBatches.value();
    t.putBatchElements = s.putBatchElements.value();
    return t;
  }

  [[nodiscard]] bool conserved() const {
    return put == take + dropped + static_cast<std::uint64_t>(depth >= 0 ? depth : 0) &&
           depth >= 0 && batchSizeSum == putBatchElements && batchSizeCount == putBatches;
  }

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "put=" << put << " take=" << take << " dropped=" << dropped << " depth=" << depth
       << " | batchSizeSum=" << batchSizeSum << " putBatchElements=" << putBatchElements
       << " | batchSizeCount=" << batchSizeCount << " putBatches=" << putBatches;
    return os.str();
  }
};

class ConservationEnv final : public ::testing::Environment {
 public:
  void SetUp() override {
    // Before the first queue operation of the process, so the ledger is
    // complete — conservation over a partial window is meaningless.
    obs::enableMetrics();
  }

  void TearDown() override {
    // Abandoned pipes close their queues in ~Pipe, but the producer task
    // observes the close and the State (owning the queue) is destroyed
    // on the pool thread asynchronously. Poll until the books balance.
    const bool settled = stress::eventually([] { return Totals::read().conserved(); }, 15000);
    const Totals t = Totals::read();
    EXPECT_TRUE(settled) << "queue conservation never settled: " << t.describe();
    EXPECT_EQ(t.put, t.take + t.dropped + static_cast<std::uint64_t>(t.depth))
        << "elements lost or duplicated: " << t.describe();
    EXPECT_GE(t.depth, 0) << "queue depth gauge went negative: " << t.describe();
    EXPECT_EQ(t.batchSizeSum, t.putBatchElements)
        << "batch-size histogram disagrees with bulk element count: " << t.describe();
    EXPECT_EQ(t.batchSizeCount, t.putBatches)
        << "batch-size histogram disagrees with bulk publication count: " << t.describe();
  }
};

// Registered at static-init time; gtest takes ownership.
const ::testing::Environment* const kConservationEnv =
    ::testing::AddGlobalTestEnvironment(new ConservationEnv);

}  // namespace
}  // namespace congen

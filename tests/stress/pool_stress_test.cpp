// pool_stress_test.cpp — torture for the cached-growth ThreadPool:
// growth under nested blocked producers (the property that keeps
// pipelines deadlock-free), shutdown racing submit, and thread-cap
// exhaustion semantics (a rejected submit must be a no-op).
#include "concur/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "concur/blocking_queue.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using stress::eventually;
using stress::onThreads;

TEST(PoolStress, GrowthUnderNestedBlockedProducers) {
  // Task i submits task i+1 and then blocks until i+1 delivers — the
  // worst case for a fixed pool (every worker is blocked waiting on work
  // that needs yet another worker). Cached growth must reach the bottom.
  ThreadPool pool;
  const int depth = 48 * stress::scale();
  std::atomic<int> completed{0};

  // Each level owns a mailbox its child fills.
  std::vector<std::unique_ptr<BlockingQueue<int>>> mail;
  mail.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) mail.push_back(std::make_unique<BlockingQueue<int>>(1));

  std::function<void(int)> level = [&](int i) {
    if (i + 1 < depth) {
      pool.submit([&level, i] { level(i + 1); });
      mail[static_cast<std::size_t>(i)]->take();  // block on the child
    }
    completed.fetch_add(1, std::memory_order_relaxed);
    if (i > 0) mail[static_cast<std::size_t>(i - 1)]->put(1);  // release the parent
  };
  pool.submit([&level] { level(0); });

  ASSERT_TRUE(eventually([&] { return completed.load() == depth; }, 30000))
      << "nested chain stalled at " << completed.load() << "/" << depth;
  EXPECT_GE(pool.threadsCreated(), static_cast<std::size_t>(depth) - 1)
      << "every blocked level needed its own worker";
  // Wait for the task tails (the release put()s) before `mail` and
  // `level` go out of scope under the still-running workers.
  ASSERT_TRUE(eventually(
      [&] { return pool.tasksCompleted() == static_cast<std::size_t>(depth); }, 30000));
}

TEST(PoolStress, ShutdownVsSubmitRace) {
  // Threads hammer submit() while the pool shuts down concurrently.
  // Every submit must either run its task to completion (accepted before
  // the flag) or throw (after) — never lose a task, never crash.
  const int rounds = 30 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    ThreadPool pool;
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::atomic<int> ran{0};

    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          try {
            pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            accepted.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::runtime_error&) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(round * 31 % 500));
    pool.shutdown();  // drains accepted work, then joins
    for (auto& t : submitters) t.join();

    EXPECT_EQ(accepted.load() + rejected.load(), 400);
    // shutdown() drains the queue before the workers retire, so every
    // accepted task ran — except those accepted after the last worker
    // retired are impossible: post-shutdown submits throw.
    ASSERT_TRUE(eventually([&] { return ran.load() == accepted.load(); }, 10000))
        << "round " << round << ": accepted=" << accepted.load() << " ran=" << ran.load();
  }
}

TEST(PoolStress, ShutdownRacesShutdownIdempotently) {
  const int rounds = 30 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    ThreadPool pool;
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
    onThreads(4, [&](int) { pool.shutdown(); });
    EXPECT_EQ(ran.load(), 8) << "concurrent shutdowns drained the queue exactly once";
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  }
}

TEST(PoolStress, ThreadCapExhaustionUnderContention) {
  // A tiny pool, many competing submitters of blocking tasks: rejections
  // are expected, but an accepted task must always eventually run, and a
  // rejected task must never run.
  constexpr std::size_t kCap = 4;
  ThreadPool pool(kCap);
  BlockingQueue<int> gate(1);
  std::atomic<int> accepted{0};
  std::atomic<int> rejectedMarks{0};
  std::atomic<int> ran{0};

  onThreads(8, [&](int) {
    for (int i = 0; i < 50; ++i) {
      try {
        pool.submit([&] {
          ran.fetch_add(1, std::memory_order_relaxed);
          gate.take();  // park until released
        });
        accepted.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::runtime_error&) {
        rejectedMarks.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_LE(pool.threadsCreated(), kCap) << "the cap is a hard ceiling";
  EXPECT_GT(rejectedMarks.load(), 0) << "contention at the cap must reject";
  gate.close();  // release every parked task
  ASSERT_TRUE(eventually([&] { return ran.load() == accepted.load(); }, 20000))
      << "accepted=" << accepted.load() << " ran=" << ran.load()
      << " — an accepted task was lost, or a rejected one ran";
  ASSERT_TRUE(eventually(
      [&] { return pool.tasksCompleted() == static_cast<std::size_t>(accepted.load()); }));
}

TEST(PoolStress, SubmitStormThenQuiesceRepeatedly) {
  // Bursts followed by quiescence: workers must be reused, not leaked —
  // the "cached" half of cached growth.
  ThreadPool pool;
  for (int burst = 0; burst < 10; ++burst) {
    std::atomic<int> ran{0};
    onThreads(4, [&](int) {
      for (int i = 0; i < 50; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    });
    ASSERT_TRUE(eventually([&] { return ran.load() == 200; }));
    ASSERT_TRUE(eventually([&] { return pool.idleThreads() == pool.threadsCreated(); }))
        << "all workers parked idle after the burst";
  }
  // Growth is bounded by peak concurrency (one burst's in-flight tasks),
  // not by the 2000 total tasks: later bursts reuse parked workers.
  EXPECT_LT(pool.threadsCreated(), 400u);
}

}  // namespace
}  // namespace congen

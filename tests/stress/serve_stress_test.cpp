// serve_stress_test.cpp — the congen-serve daemon under connection
// churn, mid-stream disconnects, and injected accept/write faults.
//
// Runs an in-process Server and hammers it from raw-socket clients that
// misbehave on purpose: hang up instead of CLOSE, hang up between
// request and response, vanish while a pipe producer is parked on a
// full queue. conservation_env.cpp rides along (as in every stress
// binary), so a leaked pipe or an unbalanced queue op from any teardown
// path fails the binary at exit — that is the "no leaked pipe" oracle
// the disconnect paths are measured against.
//
// Under the sanitizer presets (CONGEN_FAULT_INJECTION) the ServeAccept
// and ServeWrite sites are armed too: accept() throwing (EMFILE stand-
// in) must leave the accept loop running, and a write-loop throw — a
// torn frame mid-response — must tear down exactly that one session.
#include <atomic>
#include <cerrno>
#include <string>
#include <thread>

#include <poll.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include "concur/fault_injection.hpp"
#include "serve/server.hpp"
#include "stress_util.hpp"

namespace congen::serve {
namespace {

using congen::testing::FaultInjector;
using congen::testing::FaultSite;
using congen::testing::ScopedFaultInjection;
using congen::testing::SitePolicy;

/// Raw blocking client; no gtest assertions (used from many threads),
/// every operation just reports success. Deliberately does NOT use the
/// serve writeAll/readSome helpers: those carry the ServeWrite fault
/// point, and the injector is process-global — a fault firing on the
/// *client's* send would drop the request and leave readLine blocked
/// forever on a response the server never saw. The client stands in
/// for a remote process, so its I/O must be fault-free, and reads are
/// bounded (a genuinely wedged server fails the test, not the ctest
/// timeout).
struct RawClient {
  static constexpr int kReadTimeoutMs = 30000;

  Socket sock;
  std::string buf;
  bool alive = false;

  bool connect(std::uint16_t port) {
    try {
      sock = connectTo("127.0.0.1", port);
      alive = true;
    } catch (const std::exception&) {
      alive = false;
    }
    return alive;
  }

  bool send(const Request& request) {
    const std::string frame = encodeFrame(request);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(sock.fd(), frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{sock.fd(), POLLOUT, 0};
        ::poll(&pfd, 1, kReadTimeoutMs);
        continue;
      }
      return false;
    }
    return true;
  }

  bool readLine(std::string& line) {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf, 0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      if (!readMore()) return false;
    }
  }

 private:
  bool readMore() {
    char tmp[4096];
    for (;;) {
      pollfd pfd{sock.fd(), POLLIN, 0};
      const int rc = ::poll(&pfd, 1, kReadTimeoutMs);
      if (rc == 0) return false;  // bounded wait: treat a stall as EOF
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      const ssize_t n = ::recv(sock.fd(), tmp, sizeof tmp, 0);
      if (n > 0) {
        buf.append(tmp, static_cast<std::size_t>(n));
        return true;
      }
      if (n == 0) return false;
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
  }
};

Server::Config stressConfig() {
  Server::Config config;
  config.port = 0;
  // Small pipes make producers park early — the interesting regime for
  // disconnect-vs-parked-queue-op races.
  config.session.pipeCapacity = 8;
  config.session.pipeBatch = 4;
  return config;
}

TEST(ServeStress, ConnectionChurnWithMixedTeardown) {
  Server server(stressConfig());
  server.start();
  const int threads = 8;
  const int cycles = 25 * stress::scale();
  std::atomic<std::uint64_t> completed{0};
  stress::onThreads(threads, [&](int t) {
    for (int c = 0; c < cycles; ++c) {
      RawClient client;
      if (!client.connect(server.port())) continue;
      client.send({Verb::kSubmit, "1 to 20", 0});
      client.send({Verb::kNext, "", 20});
      std::string line;
      bool ok = client.readLine(line);        // hello
      ok = ok && client.readLine(line);        // generator ack
      ok = ok && client.readLine(line);        // results
      switch ((t + c) % 3) {
        case 0:  // clean close, read the goodbye
          if (ok && client.send({Verb::kClose, "", 0})) client.readLine(line);
          break;
        case 1:  // CLOSE sent, but vanish without reading the answer
          client.send({Verb::kClose, "", 0});
          break;
        default:  // abrupt hangup, no CLOSE at all
          break;
      }
      if (ok) completed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_GT(completed.load(), 0u);
  EXPECT_TRUE(stress::eventually([&] { return server.liveSessions() == 0; }))
      << "live sessions after churn: " << server.liveSessions();
  server.stop();
}

TEST(ServeStress, MidStreamDisconnectStormCancelsProducers) {
  Server server(stressConfig());
  server.start();
  const int threads = 6;
  const int cycles = 10 * stress::scale();
  std::atomic<std::uint64_t> streamed{0};
  stress::onThreads(threads, [&](int t) {
    for (int c = 0; c < cycles; ++c) {
      RawClient client;
      if (!client.connect(server.port())) continue;
      // The producer side is effectively infinite; with capacity 8 it
      // parks almost immediately. Each teardown variant must still
      // cancel it within one queue op.
      client.send({Verb::kSubmit, "! |> (1 to 100000000)", 0});
      std::string line;
      switch ((t + c) % 3) {
        case 0:  // vanish before reading anything
          break;
        case 1:  // read the acks, vanish with NEXT in flight
          client.readLine(line);  // hello
          client.readLine(line);  // generator
          client.send({Verb::kNext, "", 50});
          break;
        default:  // consume a batch, then vanish mid-stream
          client.readLine(line);
          client.readLine(line);
          client.send({Verb::kNext, "", 5});
          if (client.readLine(line)) streamed.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      // RawClient destructor closes the socket: the disconnect.
    }
  });
  EXPECT_GT(streamed.load(), 0u);
  // Every session must be reaped — which requires every parked producer
  // to have been cancelled (Session teardown blocks on the pipe tree).
  EXPECT_TRUE(stress::eventually([&] { return server.liveSessions() == 0; }, 30000))
      << "live sessions after disconnect storm: " << server.liveSessions();
  server.stop();
  // conservation_env verifies the queue invariants at process exit.
}

TEST(ServeStress, SurvivesInjectedAcceptAndWriteFaults) {
  if (!FaultInjector::compiledIn()) {
    GTEST_SKIP() << "built without CONGEN_FAULT_INJECTION — nothing to do";
  }
  Server server(stressConfig());
  server.start();
  {
    // Arm ONLY the serve sites: everything else quiet, so the failures
    // land exactly on the accept loop and the response write loop.
    ScopedFaultInjection arm(stress::seed(), SitePolicy{});
    auto& inj = FaultInjector::instance();
    inj.armSite(FaultSite::ServeAccept,
                SitePolicy{/*delayPerMille=*/100, /*maxDelayMicros=*/200, /*failPerMille=*/120});
    inj.armSite(FaultSite::ServeWrite,
                SitePolicy{/*delayPerMille=*/100, /*maxDelayMicros=*/200, /*failPerMille=*/40});
    const int threads = 6;
    const int cycles = 20 * stress::scale();
    std::atomic<std::uint64_t> answered{0};
    stress::onThreads(threads, [&](int t) {
      for (int c = 0; c < cycles; ++c) {
        RawClient client;
        if (!client.connect(server.port())) continue;
        client.send({Verb::kSubmit, "1 to 10", 0});
        client.send({Verb::kNext, "", 10});
        std::string line;
        // An injected ServeWrite fault tears this session down mid-
        // response; the client just sees EOF. Both outcomes are fine —
        // what is not fine is the server wedging or another session
        // being affected.
        if (client.readLine(line) && client.readLine(line) && client.readLine(line)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        (void)t;
      }
    });
    EXPECT_GT(answered.load(), 0u)
        << "no session ever completed under fault injection — the daemon is wedged";
    EXPECT_GT(FaultInjector::instance().hits(FaultSite::ServeAccept), 0u);
    EXPECT_GT(FaultInjector::instance().hits(FaultSite::ServeWrite), 0u);
  }
  // Disarmed: the server must still be fully functional.
  RawClient client;
  ASSERT_TRUE(client.connect(server.port()));
  client.send({Verb::kSubmit, "7", 0});
  client.send({Verb::kNext, "", 1});
  std::string line;
  ASSERT_TRUE(client.readLine(line));
  EXPECT_NE(line.find("hello"), std::string::npos);
  ASSERT_TRUE(client.readLine(line));
  ASSERT_TRUE(client.readLine(line));
  EXPECT_NE(line.find("\"results\":[\"7\"]"), std::string::npos) << line;
  EXPECT_TRUE(stress::eventually([&] { return server.liveSessions() <= 1; }));
  server.stop();
}

}  // namespace
}  // namespace congen::serve

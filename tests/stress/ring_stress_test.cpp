// ring_stress_test.cpp — concurrency torture for the lock-free SPSC
// pipe transport (SpscRing). Everything here runs with metrics enabled
// (conservation_env.cpp rides in this binary), so beyond the per-test
// assertions the global teardown proves no element was ever lost or
// double-counted across the whole process — the invariant a lock-free
// transport is most likely to break and sanitizers are blind to.
//
// Named SpscRingStress.* on purpose: CI's flake-hunt and asan repeat
// passes select the new lock-free paths with -R 'SpscRing|Steal'.
#include "concur/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "concur/cancel.hpp"
#include "concur/fault_injection.hpp"
#include "stress_util.hpp"

namespace congen {
namespace {

using namespace std::chrono_literals;

/// One producer thread, one consumer thread, mixed scalar/bulk ops
/// chosen by a deterministic per-index pattern. Returns the consumer's
/// element count; the caller asserts totals, the global Environment
/// asserts conservation.
std::int64_t runTorture(std::size_t capacity, int items, int seedSalt) {
  SpscRing<std::int64_t> ring(capacity);
  const std::uint64_t seed = stress::seed() + static_cast<std::uint64_t>(seedSalt);
  std::thread producer([&] {
    std::int64_t next = 0;
    while (next < items) {
      // Pattern: mostly bulk flushes of varying size, scalar puts mixed in.
      const auto pick = (seed + static_cast<std::uint64_t>(next)) % 7;
      if (pick == 0) {
        ASSERT_TRUE(ring.put(next));
        ++next;
      } else {
        std::vector<std::int64_t> batch;
        const std::int64_t n = std::min<std::int64_t>(1 + static_cast<std::int64_t>(pick) * 3,
                                                      items - next);
        for (std::int64_t i = 0; i < n; ++i) batch.push_back(next + i);
        next += n;
        while (!batch.empty() && ring.putAll(batch) > 0) {
        }
        ASSERT_TRUE(batch.empty());
      }
    }
    ring.close();
  });
  std::int64_t expect = 0;
  for (;;) {
    const auto pick = (seed ^ static_cast<std::uint64_t>(expect)) % 5;
    if (pick == 0) {
      auto v = ring.take();
      if (!v) break;
      EXPECT_EQ(*v, expect++);
    } else {
      const auto got = ring.takeUpTo(1 + pick * 7);
      if (got.empty()) break;
      for (auto v : got) EXPECT_EQ(v, expect++);
    }
  }
  producer.join();
  return expect;
}

TEST(SpscRingStress, ConservationTortureMixedOps) {
  const int items = 30000 * stress::scale();
  EXPECT_EQ(runTorture(/*capacity=*/16, items, 1), items);
}

TEST(SpscRingStress, ConservationTortureTinyRing) {
  // Capacity 1 maximizes park/wake churn: every element is a rendezvous.
  const int items = 5000 * stress::scale();
  EXPECT_EQ(runTorture(/*capacity=*/1, items, 2), items);
}

TEST(SpscRingStress, ConservationTortureWideRing) {
  const int items = 30000 * stress::scale();
  EXPECT_EQ(runTorture(/*capacity=*/1024, items, 3), items);
}

TEST(SpscRingStress, CancelVsParkRace) {
  // The classic lost-wakeup shape: a consumer parking on an empty ring
  // races a cancel from another thread. The register-then-recheck
  // protocol must never strand the consumer, whichever side wins.
  const int rounds = 300 * stress::scale();
  for (int r = 0; r < rounds; ++r) {
    SpscRing<std::int64_t> ring(2);
    StopSource source;
    std::atomic<int> status{-1};
    std::thread consumer([&] {
      std::optional<std::int64_t> out;
      status = static_cast<int>(ring.takeFor(out, source.token(), {}));
    });
    // Vary the cancel's timing across rounds to sample interleavings on
    // both sides of the park.
    if (r % 3 == 1) std::this_thread::yield();
    if (r % 3 == 2) std::this_thread::sleep_for(std::chrono::microseconds(200));
    source.requestStop();
    consumer.join();
    EXPECT_EQ(status.load(), static_cast<int>(QueueOpStatus::kCancelled));
  }
}

TEST(SpscRingStress, CancelVsParkRaceProducerSide) {
  const int rounds = 300 * stress::scale();
  for (int r = 0; r < rounds; ++r) {
    SpscRing<std::int64_t> ring(1);
    ASSERT_TRUE(ring.tryPut(0));
    StopSource source;
    std::atomic<int> status{-1};
    std::thread producer(
        [&] { status = static_cast<int>(ring.putFor(1, source.token(), {})); });
    if (r % 3 == 1) std::this_thread::yield();
    if (r % 3 == 2) std::this_thread::sleep_for(std::chrono::microseconds(200));
    source.requestStop();
    producer.join();
    EXPECT_EQ(status.load(), static_cast<int>(QueueOpStatus::kCancelled));
  }
}

TEST(SpscRingStress, CloseWhileFullNeverLosesTheDrain) {
  // close() racing a full ring + parked producer: the consumer must see
  // every element accepted before the close, then end-of-stream; the
  // producer must unblock promptly.
  const int rounds = 200 * stress::scale();
  for (int r = 0; r < rounds; ++r) {
    SpscRing<std::int64_t> ring(4);
    std::atomic<std::int64_t> accepted{0};
    std::thread producer([&] {
      std::int64_t n = 0;
      while (ring.put(n)) {
        accepted.fetch_add(1, std::memory_order_relaxed);
        ++n;
      }
    });
    std::thread closer([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 + (r % 7) * 37));
      ring.close();
    });
    producer.join();
    closer.join();
    // Drain everything that was accepted; order must be intact.
    std::int64_t expect = 0;
    while (auto v = ring.take()) EXPECT_EQ(*v, expect++);
    EXPECT_EQ(expect, accepted.load());
  }
}

TEST(SpscRingStress, TimedOpsUnderLoad) {
  // Deadlines expire and succeed interleaved with real traffic; a
  // kTimedOut must never consume or publish an element.
  const int items = 4000 * stress::scale();
  SpscRing<std::int64_t> ring(8);
  std::thread producer([&] {
    std::int64_t next = 0;
    while (next < items) {
      const auto status = ring.putFor(
          next, CancelToken{},
          QueueDeadline{std::chrono::steady_clock::now() + std::chrono::microseconds(200)});
      if (status == QueueOpStatus::kOk) {
        ++next;
      } else {
        ASSERT_EQ(status, QueueOpStatus::kTimedOut);
      }
    }
    ring.close();
  });
  std::int64_t expect = 0;
  for (;;) {
    std::optional<std::int64_t> out;
    const auto status = ring.takeFor(
        out, CancelToken{},
        QueueDeadline{std::chrono::steady_clock::now() + std::chrono::microseconds(300)});
    if (status == QueueOpStatus::kOk) {
      EXPECT_EQ(*out, expect++);
    } else if (status == QueueOpStatus::kClosed) {
      break;
    } else {
      ASSERT_EQ(status, QueueOpStatus::kTimedOut);
    }
  }
  producer.join();
  EXPECT_EQ(expect, items);
}

TEST(SpscRingStress, AbandonedElementsAreAccountedAsDropped) {
  // A cancelled consumer walks away from a part-full ring; the ring's
  // destructor must book the remainder as dropped_on_close or the global
  // conservation check at teardown fails.
  const int rounds = 100 * stress::scale();
  for (int r = 0; r < rounds; ++r) {
    SpscRing<std::int64_t> ring(16);
    for (std::int64_t i = 0; i < 10; ++i) ASSERT_TRUE(ring.put(i));
    for (std::int64_t i = 0; i < r % 10; ++i) ASSERT_TRUE(ring.take().has_value());
    ring.close();
    // Destructor runs here with 10 - r%10 elements still buffered.
  }
}

TEST(SpscRingStress, FaultInjectionShakesTheParkProtocol) {
  if (!testing::FaultInjector::compiledIn()) {
    GTEST_SKIP() << "fault hooks not compiled in (CONGEN_FAULT_INJECTION off)";
  }
  // Delay-only policy at every queue site: stretches the windows between
  // load-seq / set-parked / recheck / wait so the fence pairing is
  // actually exercised rather than won by timing luck. QueuePut/PutAll
  // are failure-capable sites, so the producer also absorbs thrown
  // faults — a failed put publishes nothing, which conservation checks.
  testing::SitePolicy policy;
  policy.delayPerMille = 80;
  policy.maxDelayMicros = 300;
  policy.failPerMille = 20;
  testing::ScopedFaultInjection arm(stress::seed(), policy);
  const int items = 3000 * stress::scale();
  SpscRing<std::int64_t> ring(4);
  std::thread producer([&] {
    std::int64_t next = 0;
    while (next < items) {
      try {
        if (!ring.put(next)) break;
        ++next;
      } catch (const testing::InjectedFault&) {
        // Injected before the publish: retry the same element.
      }
    }
    ring.close();
  });
  std::int64_t expect = 0;
  for (;;) {
    try {
      auto v = ring.take();
      if (!v) break;
      EXPECT_EQ(*v, expect++);
    } catch (const testing::InjectedFault&) {
    }
  }
  producer.join();
  EXPECT_EQ(expect, items);
}

}  // namespace
}  // namespace congen

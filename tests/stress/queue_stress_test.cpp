// queue_stress_test.cpp — many-producer/many-consumer torture for
// BlockingQueue: conservation (no element lost or duplicated) across
// capacities, close-vs-put races, the capacity-1 mailbox under
// contention, and drain-after-close. These are the invariants the queue
// section of docs/INTERNALS.md ("Threading invariants") promises.
#include "concur/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "stress_util.hpp"

namespace congen {
namespace {

using stress::onThreads;

/// Drive P producers and C consumers over one queue and assert exact
/// once-delivery of every successfully put element.
void conservationTorture(int producers, int consumers, int perProducer, std::size_t capacity) {
  BlockingQueue<int> q(capacity);
  std::atomic<int> putOk{0};
  std::mutex gotMutex;
  std::vector<int> got;

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < perProducer; ++i) {
        if (q.put(p * perProducer + i)) putOk.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> local;
      while (auto v = q.take()) local.push_back(*v);
      std::lock_guard lock(gotMutex);
      got.insert(got.end(), local.begin(), local.end());
    });
  }
  // Producers finish (nothing closes the queue under them), then close
  // releases the consumers once the buffer drains.
  for (int p = 0; p < producers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = static_cast<std::size_t>(producers); t < threads.size(); ++t) {
    threads[t].join();
  }

  ASSERT_EQ(putOk.load(), producers * perProducer) << "no put may fail before close";
  ASSERT_EQ(got.size(), static_cast<std::size_t>(producers * perProducer));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < producers * perProducer; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "element lost or duplicated";
  }
}

TEST(QueueStress, ManyToManyBounded) { conservationTorture(4, 4, 1000 * stress::scale(), 8); }

TEST(QueueStress, ManyToManyUnbounded) { conservationTorture(4, 2, 1000 * stress::scale(), 0); }

TEST(QueueStress, ManyToManyMailbox) {
  // Capacity 1: every transfer is a full rendezvous; maximal contention
  // on the two condition variables.
  conservationTorture(4, 4, 250 * stress::scale(), 1);
}

TEST(QueueStress, CloseVsPutRace) {
  // Producers hammer put() while a closer slams the door at a random
  // point. Invariant: elements taken + elements left in the drain ==
  // puts that reported success; nothing is lost, nothing is duplicated.
  const int rounds = 50 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    BlockingQueue<int> q(4);
    std::atomic<int> putOk{0};
    std::atomic<int> taken{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 3; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < 200; ++i) {
          if (!q.put(p * 200 + i)) return;  // closed under us — stop
          putOk.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    threads.emplace_back([&] {
      while (q.take()) taken.fetch_add(1, std::memory_order_relaxed);
    });
    threads.emplace_back([&] {
      // Close at a slightly different moment each round.
      std::this_thread::sleep_for(std::chrono::microseconds(round * 17 % 400));
      q.close();
    });
    for (auto& t : threads) t.join();
    // The consumer drained everything before observing the close.
    EXPECT_EQ(taken.load(), putOk.load()) << "round " << round << " seed " << stress::seed();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.take().has_value());
  }
}

TEST(QueueStress, DrainAfterCloseDeliversEverythingBuffered) {
  // Close with a full buffer and concurrent consumers: every buffered
  // element must still come out exactly once (close is a poison pill,
  // not a discard).
  const int rounds = 50 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    BlockingQueue<int> q(0);  // unbounded: all puts succeed immediately
    constexpr int kElems = 500;
    for (int i = 0; i < kElems; ++i) ASSERT_TRUE(q.put(i));
    std::atomic<int> taken{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 4; ++c) {
      consumers.emplace_back([&] {
        // Drain races the close below; every buffered element must come
        // out before the poison pill is observed.
        while (q.take()) taken.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(round * 13 % 300));
    q.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(taken.load(), kElems);
  }
}

TEST(QueueStress, CloseRacesCloseIdempotently) {
  const int rounds = 100 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    BlockingQueue<int> q(2);
    q.put(1);
    onThreads(4, [&](int) { q.close(); });
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.take(), 1);
    EXPECT_FALSE(q.take().has_value());
  }
}

TEST(QueueStress, TryOpsConserveUnderContention) {
  // Lock-free-style hammering through the non-blocking API only:
  // successful tryPuts == successful tryTakes + what is left buffered.
  BlockingQueue<int> q(16);
  std::atomic<int> putOk{0};
  std::atomic<int> takeOk{0};
  std::atomic<bool> stop{false};
  const int perThread = 20000 * stress::scale();

  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < perThread; ++i) {
        if (q.tryPut(i)) putOk.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (q.tryTake()) takeOk.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < 3; ++p) threads[static_cast<std::size_t>(p)].join();
  stop = true;
  for (std::size_t t = 3; t < threads.size(); ++t) threads[t].join();

  int drained = 0;
  while (q.tryTake()) ++drained;
  EXPECT_EQ(putOk.load(), takeOk.load() + drained) << "try-API conservation";
}

TEST(QueueStress, MixedBlockingAndTryTraffic) {
  // Blocking producers vs. non-blocking consumers plus one blocking
  // consumer — the shapes pipes and schedulers actually mix.
  BlockingQueue<int> q(4);
  constexpr int kProducers = 3;
  const int perProducer = 500 * stress::scale();
  std::atomic<int> delivered{0};
  std::atomic<bool> stopPolling{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < perProducer; ++i) EXPECT_TRUE(q.put(i));
    });
  }
  threads.emplace_back([&] {
    while (!stopPolling.load(std::memory_order_relaxed)) {
      if (q.tryTake()) delivered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  threads.emplace_back([&] {
    while (q.take()) delivered.fetch_add(1, std::memory_order_relaxed);
  });
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  threads.back().join();  // blocking consumer exits via the poison pill
  stopPolling = true;
  threads[static_cast<std::size_t>(kProducers)].join();
  while (q.tryTake()) delivered.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(delivered.load(), kProducers * perProducer);
}

// --- Bulk hand-off (putAll / takeUpTo) -------------------------------
// The batched pipe transport rides on these two; the invariants are the
// same as the scalar API (conservation, FIFO per producer, close as a
// poison pill) plus one new one: a bulk op that moves k elements must
// wake enough waiters for all k (a notify_one there strands k-1).

TEST(QueueBulkStress, MixedBulkAndScalarConservationWithFifoPerProducer) {
  // Producers alternate putAll batches with scalar puts; consumers
  // alternate takeUpTo with scalar takes. Every element is tagged
  // (producer, seq): each consumer's local view, restricted to one
  // producer, must be strictly increasing — takeUpTo may not reorder
  // within a batch or against the scalar traffic.
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  const int perProducer = 900 * stress::scale();
  BlockingQueue<int> q(8);
  std::mutex gotMutex;
  std::vector<int> got;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      int next = 0;
      while (next < perProducer) {
        const int batchSize = 1 + (next % 7);
        if (next % 3 == 0) {
          std::vector<int> batch;
          for (int i = 0; i < batchSize && next < perProducer; ++i) {
            batch.push_back(p * 1'000'000 + next++);
          }
          const std::size_t want = batch.size();
          ASSERT_EQ(q.putAll(batch), want) << "no putAll may be cut short before close";
          ASSERT_TRUE(batch.empty()) << "accepted elements must be consumed from the batch";
        } else {
          ASSERT_TRUE(q.put(p * 1'000'000 + next++));
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::vector<int> local;
      for (;;) {
        if (c % 2 == 0) {
          auto chunk = q.takeUpTo(5);
          if (chunk.empty()) break;  // closed and drained
          local.insert(local.end(), chunk.begin(), chunk.end());
        } else {
          auto v = q.take();
          if (!v) break;
          local.push_back(*v);
        }
      }
      // FIFO per producer: this consumer's takes are a subsequence of
      // queue order, so each producer's tags must appear increasing.
      std::vector<int> lastSeq(kProducers, -1);
      for (int tagged : local) {
        const int p = tagged / 1'000'000;
        const int seq = tagged % 1'000'000;
        EXPECT_GT(seq, lastSeq[static_cast<std::size_t>(p)])
            << "bulk hand-off reordered producer " << p << "'s elements";
        lastSeq[static_cast<std::size_t>(p)] = seq;
      }
      std::lock_guard lock(gotMutex);
      got.insert(got.end(), local.begin(), local.end());
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProducers * perProducer));
  std::sort(got.begin(), got.end());
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < perProducer; ++i) {
      ASSERT_EQ(got[static_cast<std::size_t>(p * perProducer + i)], p * 1'000'000 + i)
          << "element lost or duplicated";
    }
  }
}

TEST(QueueBulkStress, TakeUpToFreesEveryBlockedProducer) {
  // Regression for the notify_one stranding audit: one takeUpTo that
  // frees k slots must wake ALL k blocked producers, not just one.
  const int rounds = 30 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    constexpr std::size_t kCapacity = 8;
    BlockingQueue<int> q(kCapacity);
    for (int i = 0; i < static_cast<int>(kCapacity); ++i) ASSERT_TRUE(q.put(i));
    std::atomic<int> unblocked{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < static_cast<int>(kCapacity); ++p) {
      producers.emplace_back([&, p] {
        ASSERT_TRUE(q.put(100 + p));  // blocks: queue is full
        unblocked.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Give the producers a moment to park on notFull_ (a producer that
    // has not blocked yet just puts directly — still correct, merely a
    // weaker round).
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_EQ(q.takeUpTo(kCapacity).size(), kCapacity);
    // Under a single notify_one only one producer would ever wake; the
    // rest would hang here until the test watchdog.
    for (auto& t : producers) t.join();
    EXPECT_EQ(unblocked.load(), static_cast<int>(kCapacity));
    EXPECT_EQ(q.takeUpTo(2 * kCapacity).size(), kCapacity);
  }
}

TEST(QueueBulkStress, PutAllFreesEveryBlockedConsumer) {
  // Symmetric regression: one putAll of k elements must wake k blocked
  // takers, not one.
  const int rounds = 30 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    constexpr int kConsumers = 6;
    BlockingQueue<int> q(0);
    std::atomic<int> woke{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        if (q.take()) woke.fetch_add(1, std::memory_order_relaxed);
      });
    }
    while (q.waitingConsumers() < static_cast<std::size_t>(kConsumers)) {
      std::this_thread::yield();
    }
    std::vector<int> batch(kConsumers, 7);
    ASSERT_EQ(q.putAll(batch), static_cast<std::size_t>(kConsumers));
    for (auto& t : consumers) t.join();
    EXPECT_EQ(woke.load(), kConsumers) << "a bulk put stranded blocked takers";
  }
}

TEST(QueueBulkStress, CloseWithManyBlockedWaitersReleasesAll) {
  // The close-with-many-blocked-waiters audit: blocked put, putAll,
  // take, and takeUpTo callers must ALL return promptly on close —
  // producers report partial/zero acceptance, consumers drain what was
  // buffered and then observe the poison pill.
  const int rounds = 20 * stress::scale();
  for (int round = 0; round < rounds; ++round) {
    BlockingQueue<int> q(2);
    ASSERT_TRUE(q.put(1));
    ASSERT_TRUE(q.put(2));  // full: every producer below blocks
    std::atomic<int> released{0};
    std::atomic<int> accepted{0};  // elements the door let through
    std::atomic<int> drained{0};
    std::vector<std::thread> waiters;
    for (int p = 0; p < 3; ++p) {
      waiters.emplace_back([&] {
        // May succeed (a drainer freed a slot first) or be refused by
        // the close — both are legal; conservation is checked below.
        if (q.put(9)) accepted.fetch_add(1, std::memory_order_relaxed);
        released.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (int p = 0; p < 3; ++p) {
      waiters.emplace_back([&] {
        std::vector<int> batch{10, 11, 12};
        accepted.fetch_add(static_cast<int>(q.putAll(batch)), std::memory_order_relaxed);
        released.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(round * 29 % 500));
    std::vector<std::thread> drainers;
    for (int c = 0; c < 4; ++c) {
      drainers.emplace_back([&, c] {
        for (;;) {
          if (c % 2 == 0) {
            auto chunk = q.takeUpTo(4);
            if (chunk.empty()) break;
            drained.fetch_add(static_cast<int>(chunk.size()), std::memory_order_relaxed);
          } else {
            if (!q.take()) break;
            drained.fetch_add(1, std::memory_order_relaxed);
          }
        }
        released.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(round * 17 % 300));
    q.close();
    for (auto& t : waiters) t.join();
    for (auto& t : drainers) t.join();
    EXPECT_EQ(released.load(), 10) << "a blocked waiter outlived close";
    // Conservation across the storm: the 2 pre-filled elements plus
    // whatever the racing producers got in before the door shut.
    EXPECT_EQ(drained.load(), 2 + accepted.load()) << "round " << round;
    EXPECT_EQ(q.size(), 0u);
  }
}

}  // namespace
}  // namespace congen

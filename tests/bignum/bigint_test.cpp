// bigint_test.cpp — unit and property tests for the BigInt substrate.
#include "bignum/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

namespace congen {
namespace {

TEST(BigIntBasics, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.signum(), 0);
  EXPECT_EQ(z.toString(), "0");
  EXPECT_EQ(z.bitLength(), 0u);
  EXPECT_EQ(z.toInt64(), 0);
  EXPECT_FALSE(z.isNegative());
  EXPECT_TRUE((-z).isZero()) << "negating zero stays zero with positive sign";
}

TEST(BigIntBasics, Int64RoundTrip) {
  for (const std::int64_t v : {INT64_C(0), INT64_C(1), INT64_C(-1), INT64_C(42), INT64_C(-7777),
                               std::numeric_limits<std::int64_t>::max(),
                               std::numeric_limits<std::int64_t>::min()}) {
    const BigInt b{v};
    ASSERT_TRUE(b.toInt64().has_value()) << v;
    EXPECT_EQ(*b.toInt64(), v);
    EXPECT_EQ(b.toString(), std::to_string(v));
  }
}

TEST(BigIntBasics, Int64MinDoesNotOverflowOnConstruction) {
  const BigInt b{std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ(b.toString(), "-9223372036854775808");
  EXPECT_EQ((-b).toString(), "9223372036854775808");
  EXPECT_FALSE((-b).toInt64().has_value()) << "2^63 exceeds int64";
}

TEST(BigIntBasics, ParseRejectsMalformed) {
  EXPECT_FALSE(BigInt::parse("").has_value());
  EXPECT_FALSE(BigInt::parse("-").has_value());
  EXPECT_FALSE(BigInt::parse("12x4").has_value());
  EXPECT_FALSE(BigInt::parse("z", 35).has_value()) << "z is not a base-35 digit";
  EXPECT_FALSE(BigInt::parse("10", 1).has_value()) << "radix below 2";
  EXPECT_FALSE(BigInt::parse("10", 37).has_value()) << "radix above 36";
  EXPECT_THROW(BigInt::fromString("bad"), std::invalid_argument);
}

TEST(BigIntBasics, ParseAcceptsSigns) {
  EXPECT_EQ(BigInt::fromString("+123").toInt64(), 123);
  EXPECT_EQ(BigInt::fromString("-123").toInt64(), -123);
}

TEST(BigIntBasics, Base36WordDecoding) {
  // The wordToNumber of Fig. 3: new BigInteger(word, 36).
  EXPECT_EQ(BigInt::fromString("hello", 36).toString(), "29234652");
  EXPECT_EQ(BigInt::fromString("HELLO", 36).toString(), "29234652") << "case-insensitive digits";
  EXPECT_EQ(BigInt::fromString("zz", 36).toInt64(), 35 * 36 + 35);
}

TEST(BigIntBasics, PowerOfTwoPrinting) {
  EXPECT_EQ((BigInt{2}.pow(100)).toString(), "1267650600228229401496703205376");
  EXPECT_EQ((BigInt{2}.pow(100)).toString(16), "10000000000000000000000000");
  EXPECT_EQ((BigInt{10}.pow(30)).toString(), "1" + std::string(30, '0'));
}

TEST(BigIntArith, FactorialKnownValue) {
  BigInt f{1};
  for (int i = 2; i <= 30; ++i) f *= BigInt{i};
  EXPECT_EQ(f.toString(), "265252859812191058636308480000000");
}

TEST(BigIntArith, AdditionCancellation) {
  const BigInt a = BigInt::fromString("123456789012345678901234567890");
  EXPECT_TRUE((a + (-a)).isZero());
  EXPECT_EQ((a - a).signum(), 0);
  EXPECT_EQ((a + a - a), a);
}

TEST(BigIntArith, DivisionBasics) {
  const BigInt a{100}, b{7};
  EXPECT_EQ((a / b).toInt64(), 14);
  EXPECT_EQ((a % b).toInt64(), 2);
  // C truncation semantics: remainder takes the dividend's sign.
  EXPECT_EQ(((-a) / b).toInt64(), -14);
  EXPECT_EQ(((-a) % b).toInt64(), -2);
  EXPECT_EQ((a / (-b)).toInt64(), -14);
  EXPECT_EQ((a % (-b)).toInt64(), 2);
  EXPECT_THROW(a / BigInt{}, std::domain_error);
  EXPECT_THROW(a % BigInt{}, std::domain_error);
}

TEST(BigIntArith, MultiLimbDivisionKnownValues) {
  const BigInt n = BigInt::fromString("340282366920938463463374607431768211456");  // 2^128
  EXPECT_EQ((n / BigInt::fromString("18446744073709551616")).toString(),
            "18446744073709551616");  // 2^128 / 2^64 = 2^64
  EXPECT_TRUE((n % BigInt::fromString("18446744073709551616")).isZero());
  const BigInt q = n / BigInt{3};
  EXPECT_EQ((q * BigInt{3} + n % BigInt{3}), n);
}

TEST(BigIntArith, KnuthAddBackCase) {
  // A divisor/dividend pair engineered to hit the rare add-back branch:
  // top limbs force qHat to be estimated one too large.
  const BigInt u = (BigInt{1} << 96) - (BigInt{1} << 64);
  const BigInt v = (BigInt{1} << 64) - BigInt{1};
  BigInt q, r;
  BigInt::divmod(u, v, q, r);
  EXPECT_EQ(q * v + r, u);
  EXPECT_TRUE(r < v && r.signum() >= 0);
}

TEST(BigIntArith, ShiftsAreConsistentWithPow2) {
  const BigInt a = BigInt::fromString("987654321987654321");
  for (std::size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(a << s, a * BigInt{2}.pow(s)) << "shift " << s;
    EXPECT_EQ((a << s) >> s, a) << "round-trip " << s;
  }
  EXPECT_TRUE((BigInt{1} >> 1).isZero());
}

TEST(BigIntArith, PowEdgeCases) {
  EXPECT_EQ(BigInt{5}.pow(0).toInt64(), 1);
  EXPECT_EQ(BigInt{0}.pow(0).toInt64(), 1) << "0^0 = 1 by convention";
  EXPECT_EQ(BigInt{0}.pow(5).toInt64(), 0);
  EXPECT_EQ(BigInt{-2}.pow(3).toInt64(), -8);
  EXPECT_EQ(BigInt{-2}.pow(4).toInt64(), 16);
}

TEST(BigIntArith, PowMod) {
  // Fermat: 2^(p-1) ≡ 1 (mod p) for prime p.
  const BigInt p{1000003};
  EXPECT_EQ(BigInt{2}.powMod(p - BigInt{1}, p).toInt64(), 1);
  EXPECT_THROW(BigInt{2}.powMod(BigInt{3}, BigInt{}), std::domain_error);
  EXPECT_THROW(BigInt{2}.powMod(BigInt{-3}, BigInt{7}), std::domain_error);
}

TEST(BigIntNumberTheory, IsqrtKnownAndEdges) {
  EXPECT_EQ(BigInt{0}.isqrt().toInt64(), 0);
  EXPECT_EQ(BigInt{1}.isqrt().toInt64(), 1);
  EXPECT_EQ(BigInt{99}.isqrt().toInt64(), 9);
  EXPECT_EQ(BigInt{100}.isqrt().toInt64(), 10);
  EXPECT_EQ((BigInt{10}.pow(40)).isqrt(), BigInt{10}.pow(20));
  EXPECT_THROW(BigInt{-4}.isqrt(), std::domain_error);
}

TEST(BigIntNumberTheory, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt{}, BigInt{5}).toInt64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt{7}.pow(10), BigInt{7}.pow(6)), BigInt{7}.pow(6));
}

TEST(BigIntNumberTheory, SmallPrimes) {
  const std::vector<int> primes = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31,
                                   37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79};
  std::size_t idx = 0;
  for (int n = 2; n <= 79; ++n) {
    const bool expected = idx < primes.size() && primes[idx] == n;
    EXPECT_EQ(BigInt{n}.isProbablePrime(), expected) << n;
    if (expected) ++idx;
  }
  EXPECT_FALSE(BigInt{0}.isProbablePrime());
  EXPECT_FALSE(BigInt{1}.isProbablePrime());
  EXPECT_FALSE(BigInt{-7}.isProbablePrime());
}

TEST(BigIntNumberTheory, CarmichaelNumbersAreComposite) {
  // Fermat pseudoprimes that fool weak tests; Miller-Rabin must reject.
  for (const std::int64_t c : {INT64_C(561), INT64_C(1105), INT64_C(1729), INT64_C(2465),
                               INT64_C(2821), INT64_C(6601), INT64_C(8911)}) {
    EXPECT_FALSE(BigInt{c}.isProbablePrime()) << c;
  }
}

TEST(BigIntNumberTheory, LargeKnownPrime) {
  // 2^89 - 1 is a Mersenne prime; 2^87 - 1 is composite.
  EXPECT_TRUE(((BigInt{1} << 89) - BigInt{1}).isProbablePrime());
  EXPECT_FALSE(((BigInt{1} << 87) - BigInt{1}).isProbablePrime());
}

TEST(BigIntNumberTheory, NextProbablePrime) {
  EXPECT_EQ(BigInt{0}.nextProbablePrime().toInt64(), 2);
  EXPECT_EQ(BigInt{2}.nextProbablePrime().toInt64(), 3);
  EXPECT_EQ(BigInt{3}.nextProbablePrime().toInt64(), 5);
  EXPECT_EQ(BigInt{89}.nextProbablePrime().toInt64(), 97);
  EXPECT_EQ(BigInt{10000}.nextProbablePrime().toInt64(), 10007);
}

TEST(BigIntCompare, Ordering) {
  EXPECT_LT(BigInt{-5}, BigInt{3});
  EXPECT_LT(BigInt{-5}, BigInt{-3});
  EXPECT_LT(BigInt{3}, BigInt{5});
  EXPECT_LT(BigInt{5}, BigInt::fromString("18446744073709551616"));
  EXPECT_LT(BigInt::fromString("-18446744073709551616"), BigInt{-5});
  EXPECT_EQ(BigInt{7}, BigInt::fromString("7"));
}

TEST(BigIntCompare, HashConsistentWithEquality) {
  const BigInt a = BigInt::fromString("123456789123456789123456789");
  const BigInt b = BigInt::fromString("123456789123456789123456789");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), (-a).hash()) << "sign participates in the hash";
}

// ---------------------------------------------------------------------
// Property sweeps (TEST_P): cross-check against __int128 arithmetic.
// ---------------------------------------------------------------------

class BigIntRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntRandomProperty, MatchesInt128Arithmetic) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000'000LL, 1'000'000'000'000LL);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = dist(rng), y = dist(rng);
    const BigInt bx{x}, by{y};
    EXPECT_EQ((bx + by).toInt64(), x + y);
    EXPECT_EQ((bx - by).toInt64(), x - y);
    const __int128 prod = static_cast<__int128>(x) * y;
    EXPECT_EQ((bx * by).toString(),
              [&] {
                // render the __int128 for comparison
                if (prod == 0) return std::string("0");
                __int128 p = prod < 0 ? -prod : prod;
                std::string s;
                while (p) {
                  s += static_cast<char>('0' + static_cast<int>(p % 10));
                  p /= 10;
                }
                if (prod < 0) s += '-';
                return std::string(s.rbegin(), s.rend());
              }());
    if (y != 0) {
      EXPECT_EQ((bx / by).toInt64(), x / y);
      EXPECT_EQ((bx % by).toInt64(), x % y);
    }
  }
}

TEST_P(BigIntRandomProperty, DivModInvariantOnWideValues) {
  std::mt19937_64 rng(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 60; ++i) {
    // Random magnitudes up to ~256 bits.
    auto randomBig = [&rng](int limbs) {
      BigInt v;
      for (int k = 0; k < limbs; ++k) {
        v = (v << 32) + BigInt{static_cast<std::int64_t>(rng() & 0xFFFFFFFF)};
      }
      return v;
    };
    const BigInt a = randomBig(8);
    const BigInt b = randomBig(1 + static_cast<int>(rng() % 5)) + BigInt{1};
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b) << "remainder bounded by divisor";
    EXPECT_TRUE(r.signum() >= 0);
  }
}

TEST_P(BigIntRandomProperty, RadixRoundTrip) {
  std::mt19937_64 rng(GetParam() ^ 0x5EED);
  for (unsigned radix = 2; radix <= 36; ++radix) {
    for (int i = 0; i < 8; ++i) {
      BigInt v;
      const int limbs = 1 + static_cast<int>(rng() % 6);
      for (int k = 0; k < limbs; ++k) {
        v = (v << 32) + BigInt{static_cast<std::int64_t>(rng() & 0xFFFFFFFF)};
      }
      if (rng() & 1) v = -v;
      EXPECT_EQ(BigInt::fromString(v.toString(radix), radix), v)
          << "radix " << radix << ": " << v.toString(radix);
    }
  }
}

TEST_P(BigIntRandomProperty, IsqrtBounds) {
  std::mt19937_64 rng(GetParam() ^ 0x15057);
  for (int i = 0; i < 60; ++i) {
    BigInt v;
    const int limbs = 1 + static_cast<int>(rng() % 8);
    for (int k = 0; k < limbs; ++k) {
      v = (v << 32) + BigInt{static_cast<std::int64_t>(rng() & 0xFFFFFFFF)};
    }
    const BigInt s = v.isqrt();
    EXPECT_TRUE(s * s <= v) << v.toString();
    EXPECT_TRUE((s + BigInt{1}) * (s + BigInt{1}) > v) << v.toString();
  }
}

TEST_P(BigIntRandomProperty, KaratsubaAgreesWithSchoolbook) {
  // Operands big enough to engage Karatsuba (threshold: 32 limbs); the
  // identity (a+b)^2 - (a-b)^2 = 4ab stresses both paths.
  std::mt19937_64 rng(GetParam() ^ 0xCAFE);
  for (int i = 0; i < 10; ++i) {
    auto randomBig = [&rng](int limbs) {
      BigInt v;
      for (int k = 0; k < limbs; ++k) {
        v = (v << 32) + BigInt{static_cast<std::int64_t>(rng() & 0xFFFFFFFF)};
      }
      return v;
    };
    const BigInt a = randomBig(64), b = randomBig(48);
    const BigInt lhs = (a + b) * (a + b) - (a - b) * (a - b);
    const BigInt rhs = (a * b) << 2;
    EXPECT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 20260704u));

}  // namespace
}  // namespace congen

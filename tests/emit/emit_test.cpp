// emit_test.cpp — the C++ emitter (Fig. 5 analogue): structural golden
// checks on the generated code, including the spawnMap example itself.
#include "emit/emitter.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace congen::emit {
namespace {

std::string emitDefs(const std::string& src, EmitOptions opts = {}) {
  return emitModule(frontend::parseProgram(src), opts);
}

void expectContains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing: " << needle << "\n--- generated ---\n"
      << haystack;
}

TEST(EmitModule, BasicLayout) {
  const std::string out = emitDefs("def f(a) { return a; }");
  expectContains(out, "struct CongenModule {");
  expectContains(out, "congen::MethodBodyCache methodCache;");
  expectContains(out, "congen::ProcPtr make_f()");
  expectContains(out, "globalVar(\"f\")->set(congen::Value::proc(make_f()));");
  expectContains(out, "#include \"congen.hpp\"");
}

TEST(EmitModule, CustomModuleName) {
  EmitOptions opts;
  opts.moduleName = "WordCount";
  const std::string out = emitDefs("def f() { }", opts);
  expectContains(out, "struct WordCount {");
  expectContains(out, "WordCount() {");
}

TEST(EmitFig5, SpawnMapReproducesThePaperShape) {
  // The example of Section V.D / Fig. 5:
  //   def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }
  const std::string out = emitDefs("def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }");

  // Method-body cache protocol ("Reuse method body").
  expectContains(out, "methodCache.getFree(\"spawnMap_m\")");
  expectContains(out, "body->setCache(&methodCache, \"spawnMap_m\");");

  // Reified parameters.
  expectContains(out, "auto f_r = congen::CellVar::create();");
  expectContains(out, "auto chunk_r = congen::CellVar::create();");

  // Unpack closure rebinding parameters positionally.
  expectContains(out, "f_r->set(params.size() > 0 ? params[0] : congen::Value::null());");
  expectContains(out, "chunk_r->set(params.size() > 1 ? params[1] : congen::Value::null());");

  // Co-expression synthesis with a shadowed environment copy — the
  // chunk_s_r / f_s_r of Fig. 5.
  expectContains(out, "congen::makePipeCreateGen(");
  expectContains(out, "chunk_s1_r = congen::CellVar::create(chunk_r->get());");
  expectContains(out, "f_s1_r = congen::CellVar::create(f_r->get());");

  // Composition shape: suspend over promote over the pipe.
  expectContains(out, "congen::SuspendGen::create(");
  expectContains(out, "congen::PromoteGen::create(");
  expectContains(out, "congen::BodyRootGen::create(");
  expectContains(out, "body->unpackArgs(args);");
}

TEST(EmitNormalization, TemporariesAreBoundIterators) {
  // f(g(x)) flattens: the temp cell and the InGen wiring must appear.
  const std::string out = emitDefs("def h(x) { return f(g(x)); }");
  expectContains(out, "x_0_r");
  expectContains(out, "congen::InGen::create(x_0_r,");
}

TEST(EmitIdentifiers, ResolutionOrder) {
  const std::string out = emitDefs(R"(
    def callee() { return 1; }
    def caller(p) {
      local l;
      l := p + callee() + host + sqrt(4);
      return l;
    }
  )");
  expectContains(out, "congen::VarGen::create(l_r)");
  expectContains(out, "congen::VarGen::create(p_r)");
  expectContains(out, "congen::VarGen::create(globalVar(\"callee\"))");
  // Read-only names resolve to module globals (host data).
  expectContains(out, "congen::VarGen::create(globalVar(\"host\"))");
  expectContains(out, "congen::builtins::lookup(\"sqrt\")");
}

TEST(EmitIdentifiers, AssignedUndeclaredBecomesLocal) {
  const std::string out = emitDefs("def f() { acc := 1; return acc; }");
  expectContains(out, "auto acc_r = congen::CellVar::create();");
  expectContains(out, "acc_r->set(congen::Value::null());");
}

TEST(EmitExpressions, OperatorLowering) {
  const std::string out = emitDefs(R"(
    def ops(a, b) {
      suspend a + b;
      suspend a & b;
      suspend a | b;
      suspend a to b;
      suspend a < b;
      suspend [a, b];
      suspend not a;
    }
  )");
  expectContains(out, "congen::makeBinaryOpGen(\"+\",");
  expectContains(out, "congen::ProductGen::create(");
  expectContains(out, "congen::AltGen::create(");
  expectContains(out, "congen::makeToByGen(");
  expectContains(out, "congen::makeBinaryOpGen(\"<\",");
  expectContains(out, "congen::makeListLitGen(");
  expectContains(out, "congen::NotGen::create(");
}

TEST(EmitExpressions, ControlLowering) {
  const std::string out = emitDefs(R"(
    def ctl(n) {
      local i;
      every i := 1 to n do suspend i;
      while n > 0 do n -:= 1;
      if n == 0 then return 0; else fail;
    }
  )");
  expectContains(out, "congen::LoopGen::every(");
  expectContains(out, "congen::LoopGen::whileDo(");
  expectContains(out, "congen::IfGen::create(");
  expectContains(out, "congen::ReturnGen::create(");
  expectContains(out, "congen::FailBodyGen::create()");
  expectContains(out, "congen::makeAugAssignGen(\"-\",");
}

TEST(EmitExpressions, BigLiteralsUseBigInt) {
  const std::string out = emitDefs("def f() { return 123456789012345678901234567890; }");
  expectContains(out, "congen::BigInt::fromString(\"123456789012345678901234567890\", 10)");
  const std::string small = emitDefs("def g() { return 42; }");
  expectContains(small, "congen::Value::integer(INT64_C(42))");
}

TEST(EmitCoExpr, SharedVsShadowed) {
  const std::string shared = emitDefs("def f(x) { return @ <> (x + 1); }");
  EXPECT_EQ(shared.find("x_s1_r"), std::string::npos) << "<> shares, no shadow copy";
  const std::string shadowed = emitDefs("def f(x) { return @ |<> (x + 1); }");
  expectContains(shadowed, "x_s1_r = congen::CellVar::create(x_r->get());");
}

TEST(EmitExprRegions, NumberedMethods) {
  std::vector<ast::NodePtr> exprs;
  exprs.push_back(frontend::parseExpression("1 to 3"));
  exprs.push_back(frontend::parseExpression("f(9)"));
  const std::string out = emitModuleWithExprs(frontend::parseProgram("def f(x) { return x; }"),
                                              exprs, EmitOptions{});
  expectContains(out, "congen::GenPtr expr_0()");
  expectContains(out, "congen::GenPtr expr_1()");
  expectContains(out, "congen::makeToByGen(");
}

TEST(EmitTopLevel, StatementsRunInConstructor) {
  const std::string out = emitDefs("x := 42;");
  expectContains(out, ")->next();");
  expectContains(out, "globalVar(\"x\")");
}

TEST(EmitErrors, NestedDefsRejected) {
  // Rejected by the frontend (SyntaxError) or the emitter (EmitError) —
  // either way, nested definitions never silently miscompile.
  EXPECT_ANY_THROW(emitDefs("def outer() { def inner() { } }"));
}

TEST(EmitExtended, ScanningLowering) {
  const std::string out = emitDefs(R"(
    def fields(s) {
      local w;
      s ? while not pos(0) do { suspend tab(upto(",") | 0); move(1); };
    }
  )");
  expectContains(out, "congen::ScanGen::create(");
  expectContains(out, "congen::builtins::lookup(\"tab\")");
  expectContains(out, "congen::builtins::lookup(\"upto\")");
}

TEST(EmitExtended, KeywordVariables) {
  const std::string out = emitDefs("def f(s) { return s ? (&pos := 2 & &subject); }");
  expectContains(out, "congen::makePosVarGen()");
  expectContains(out, "congen::makeSubjectVarGen()");
}

TEST(EmitExtended, RecordsCaseAndReversibles) {
  const std::string out = emitDefs(R"(
    record point(x, y)
    def f(p, a, b) {
      a <- p.x;
      a <-> b;
      case p.y of { 1: return a; default: fail; }
    }
  )");
  expectContains(out, "congen::RecordType::create(\"point\", {\"x\", \"y\"})");
  expectContains(out, "congen::RecordImpl::create(type, std::move(args))");
  expectContains(out, "congen::makeRevAssignGen(");
  expectContains(out, "congen::makeRevSwapGen(");
  expectContains(out, "congen::CaseGen::create(");
  expectContains(out, "congen::CaseGen::Branch{nullptr,");
  expectContains(out, "congen::makeFieldGen(");
}

TEST(EmitExtended, SliceAndNullTests) {
  const std::string out = emitDefs("def f(s) { return \\s | /s | s[2:4]; }");
  expectContains(out, "congen::makeUnaryOpGen(\"\\\\\",");
  expectContains(out, "congen::makeUnaryOpGen(\"/\",");
  expectContains(out, "congen::makeSliceGen(");
}

TEST(EmitDeterminism, SameInputSameOutput) {
  const std::string src = "def f(a) { suspend ! (|> g(!a)); }";
  EXPECT_EQ(emitDefs(src), emitDefs(src));
}

}  // namespace
}  // namespace congen::emit

// emit_test.cpp — golden-file tests for the C++ emitter (Fig. 5
// analogue). Each corpus entry's full emitted output is compared
// byte-for-byte against a committed tests/emit/golden/<name>.golden
// file, so any change to the generated shape shows up as a reviewable
// diff instead of slipping past substring checks.
//
// To regenerate after an intentional emitter change:
//   ./emit_test --update-golden          (or CONGEN_UPDATE_GOLDEN=1)
// then review and commit the .golden diffs.
#include "emit/emitter.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "frontend/parser.hpp"

namespace congen::emit {
namespace {

bool g_updateGolden = false;

std::string goldenPath(const std::string& name) {
  return std::string(CONGEN_SOURCE_DIR) + "/tests/emit/golden/" + name + ".golden";
}

void expectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with: emit_test --update-golden";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "emitter output changed for corpus '" << name
      << "'. If intentional, regenerate with: emit_test --update-golden";
}

std::string emitDefs(const std::string& src, EmitOptions opts = {}) {
  return emitModule(frontend::parseProgram(src), opts);
}

TEST(EmitGolden, BasicLayout) {
  expectMatchesGolden("basic_layout", emitDefs("def f(a) { return a; }"));
}

TEST(EmitGolden, CustomModuleName) {
  EmitOptions opts;
  opts.moduleName = "WordCount";
  expectMatchesGolden("custom_module_name", emitDefs("def f() { }", opts));
}

TEST(EmitGolden, PipeKnobs) {
  // The transport knobs surface as module fields and flow into every
  // emitted makePipeCreateGen call.
  EmitOptions opts;
  opts.pipeCapacity = 256;
  opts.pipeBatch = 8;
  expectMatchesGolden("pipe_knobs", emitDefs("def f(e) { suspend ! (|> !e); }", opts));
}

TEST(EmitGolden, Fig5SpawnMap) {
  // The example of Section V.D / Fig. 5:
  //   def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }
  // Locks down the method-body cache protocol, reified parameters, the
  // unpack closure, and the shadowed co-expression environment copy.
  expectMatchesGolden("fig5_spawn_map",
                      emitDefs("def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }"));
}

TEST(EmitGolden, NormalizationTemporaries) {
  expectMatchesGolden("normalization_temporaries", emitDefs("def h(x) { return f(g(x)); }"));
}

TEST(EmitGolden, IdentifierResolution) {
  expectMatchesGolden("identifier_resolution", emitDefs(R"(
    def callee() { return 1; }
    def caller(p) {
      local l;
      l := p + callee() + host + sqrt(4);
      return l;
    }
  )"));
}

TEST(EmitGolden, AssignedUndeclaredBecomesLocal) {
  expectMatchesGolden("assigned_undeclared_local", emitDefs("def f() { acc := 1; return acc; }"));
}

TEST(EmitGolden, OperatorLowering) {
  expectMatchesGolden("operator_lowering", emitDefs(R"(
    def ops(a, b) {
      suspend a + b;
      suspend a & b;
      suspend a | b;
      suspend a to b;
      suspend a < b;
      suspend [a, b];
      suspend not a;
    }
  )"));
}

TEST(EmitGolden, ControlLowering) {
  expectMatchesGolden("control_lowering", emitDefs(R"(
    def ctl(n) {
      local i;
      every i := 1 to n do suspend i;
      while n > 0 do n -:= 1;
      if n == 0 then return 0; else fail;
    }
  )"));
}

TEST(EmitGolden, BigLiterals) {
  expectMatchesGolden("big_literals", emitDefs(R"(
    def f() { return 123456789012345678901234567890; }
    def g() { return 42; }
  )"));
}

TEST(EmitGolden, CoExprShared) {
  expectMatchesGolden("coexpr_shared", emitDefs("def f(x) { return @ <> (x + 1); }"));
}

TEST(EmitGolden, CoExprShadowed) {
  expectMatchesGolden("coexpr_shadowed", emitDefs("def f(x) { return @ |<> (x + 1); }"));
}

TEST(EmitGolden, ExprRegions) {
  std::vector<ast::NodePtr> exprs;
  exprs.push_back(frontend::parseExpression("1 to 3"));
  exprs.push_back(frontend::parseExpression("f(9)"));
  expectMatchesGolden("expr_regions",
                      emitModuleWithExprs(frontend::parseProgram("def f(x) { return x; }"), exprs,
                                          EmitOptions{}));
}

TEST(EmitGolden, TopLevelStatements) {
  expectMatchesGolden("top_level_statements", emitDefs("x := 42;"));
}

TEST(EmitGolden, ScanningLowering) {
  expectMatchesGolden("scanning_lowering", emitDefs(R"(
    def fields(s) {
      local w;
      s ? while not pos(0) do { suspend tab(upto(",") | 0); move(1); };
    }
  )"));
}

TEST(EmitGolden, KeywordVariables) {
  expectMatchesGolden("keyword_variables",
                      emitDefs("def f(s) { return s ? (&pos := 2 & &subject); }"));
}

TEST(EmitGolden, ErrorKeywords) {
  expectMatchesGolden("error_keywords", emitDefs(R"(
    def safediv(a, b) {
      local r;
      &error := 1;
      if r := a / b then { &error := 0; return r; };
      write(&errornumber, ": ", &errorvalue);
      errorclear();
    }
  )"));
}

TEST(EmitGolden, RecordsCaseAndReversibles) {
  expectMatchesGolden("records_case_reversibles", emitDefs(R"(
    record point(x, y)
    def f(p, a, b) {
      a <- p.x;
      a <-> b;
      case p.y of { 1: return a; default: fail; }
    }
  )"));
}

TEST(EmitGolden, SliceAndNullTests) {
  expectMatchesGolden("slice_null_tests", emitDefs("def f(s) { return \\s | /s | s[2:4]; }"));
}

// Structural invariants that are not snapshot comparisons.

TEST(EmitDeterminism, SameInputSameOutput) {
  const std::string src = "def f(a) { suspend ! (|> g(!a)); }";
  EXPECT_EQ(emitDefs(src), emitDefs(src));
}

TEST(EmitErrors, NestedDefsRejected) {
  // Rejected by the frontend (SyntaxError) or the emitter (EmitError) —
  // either way, nested definitions never silently miscompile.
  EXPECT_ANY_THROW(emitDefs("def outer() { def inner() { } }"));
}

}  // namespace
}  // namespace congen::emit

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") congen::emit::g_updateGolden = true;
  }
  if (std::getenv("CONGEN_UPDATE_GOLDEN") != nullptr) congen::emit::g_updateGolden = true;
  return RUN_ALL_TESTS();
}

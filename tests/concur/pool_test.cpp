// pool_test.cpp — the cached-growth thread pool.
#include "concur/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concur/blocking_queue.hpp"

namespace congen {
namespace {

void waitFor(const std::function<bool()>& cond, int ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(PoolBasics, RunsTasks) {
  ThreadPool pool;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) pool.submit([&ran] { ++ran; });
  waitFor([&] { return ran.load() == 10; });
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(pool.tasksCompleted(), 10u);
}

TEST(PoolBasics, WorkersAreReused) {
  ThreadPool pool;
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ++ran; });
    waitFor([&] { return ran.load() == i + 1; });
  }
  // Sequential submissions with idle workers available must not grow the
  // pool by one thread per task.
  EXPECT_LT(pool.threadsCreated(), 10u);
}

TEST(PoolGrowth, GrowsWhenAllWorkersBlocked) {
  // This is the property that makes nested pipelines deadlock-free: a
  // task blocked on a queue must not starve later submissions.
  ThreadPool pool;
  BlockingQueue<int> gate(1);
  constexpr int kBlocked = 6;
  std::atomic<int> started{0};
  for (int i = 0; i < kBlocked; ++i) {
    pool.submit([&] {
      ++started;
      gate.take();  // blocks until the gate is closed
    });
  }
  waitFor([&] { return started.load() == kBlocked; });
  EXPECT_EQ(started.load(), kBlocked) << "all blocked tasks started concurrently";
  EXPECT_GE(pool.threadsCreated(), static_cast<std::size_t>(kBlocked));

  std::atomic<bool> extraRan{false};
  pool.submit([&] { extraRan = true; });
  waitFor([&] { return extraRan.load(); });
  EXPECT_TRUE(extraRan.load()) << "new work proceeds while others block";
  gate.close();
}

TEST(PoolShutdown, SubmitAfterDestructionScopeIsSafe) {
  auto pool = std::make_unique<ThreadPool>();
  std::atomic<int> ran{0};
  pool->submit([&ran] { ++ran; });
  pool.reset();  // joins
  EXPECT_EQ(ran.load(), 1) << "destructor drains accepted work";
}

TEST(PoolShutdown, ThreadCapIsEnforced) {
  ThreadPool pool(/*maxThreads=*/2);
  BlockingQueue<int> gate(1);
  pool.submit([&] { gate.take(); });
  pool.submit([&] { gate.take(); });
  waitFor([&] { return pool.idleThreads() == 0; });
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  gate.close();
}

TEST(PoolGlobal, SingletonIsStable) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

}  // namespace
}  // namespace congen

// pool_test.cpp — the cached-growth thread pool.
#include "concur/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concur/blocking_queue.hpp"

namespace congen {
namespace {

void waitFor(const std::function<bool()>& cond, int ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(PoolBasics, RunsTasks) {
  ThreadPool pool;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) pool.submit([&ran] { ++ran; });
  waitFor([&] { return ran.load() == 10; });
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(pool.tasksCompleted(), 10u);
}

TEST(PoolBasics, WorkersAreReused) {
  ThreadPool pool;
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ++ran; });
    waitFor([&] { return ran.load() == i + 1; });
  }
  // Sequential submissions with idle workers available must not grow the
  // pool by one thread per task.
  EXPECT_LT(pool.threadsCreated(), 10u);
}

TEST(PoolGrowth, GrowsWhenAllWorkersBlocked) {
  // This is the property that makes nested pipelines deadlock-free: a
  // task blocked on a queue must not starve later submissions.
  ThreadPool pool;
  BlockingQueue<int> gate(1);
  constexpr int kBlocked = 6;
  std::atomic<int> started{0};
  for (int i = 0; i < kBlocked; ++i) {
    pool.submit([&] {
      ++started;
      gate.take();  // blocks until the gate is closed
    });
  }
  waitFor([&] { return started.load() == kBlocked; });
  EXPECT_EQ(started.load(), kBlocked) << "all blocked tasks started concurrently";
  EXPECT_GE(pool.threadsCreated(), static_cast<std::size_t>(kBlocked));

  std::atomic<bool> extraRan{false};
  pool.submit([&] { extraRan = true; });
  waitFor([&] { return extraRan.load(); });
  EXPECT_TRUE(extraRan.load()) << "new work proceeds while others block";
  gate.close();
}

TEST(PoolShutdown, SubmitAfterDestructionScopeIsSafe) {
  auto pool = std::make_unique<ThreadPool>();
  std::atomic<int> ran{0};
  pool->submit([&ran] { ++ran; });
  pool.reset();  // joins
  EXPECT_EQ(ran.load(), 1) << "destructor drains accepted work";
}

TEST(PoolShutdown, ThreadCapIsEnforced) {
  ThreadPool pool(/*maxThreads=*/2);
  BlockingQueue<int> gate(1);
  pool.submit([&] { gate.take(); });
  pool.submit([&] { gate.take(); });
  waitFor([&] { return pool.idleThreads() == 0; });
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  gate.close();
}

TEST(PoolShutdown, ExplicitShutdownIsIdempotent) {
  ThreadPool pool;
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) pool.submit([&ran] { ++ran; });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 5) << "shutdown drains accepted work before joining";
  pool.shutdown();  // second call is a no-op
  EXPECT_THROW(pool.submit([] {}), std::runtime_error) << "pool stays closed";
  EXPECT_EQ(pool.tasksCompleted(), 5u);
}

TEST(PoolShutdown, CapRejectionDoesNotEnqueueTheTask) {
  // Regression: submit() used to push the task *before* the cap check,
  // so a "rejected" task was still queued and ran later anyway.
  ThreadPool pool(/*maxThreads=*/1);
  BlockingQueue<int> gate(1);
  pool.submit([&] { gate.take(); });  // occupies the only worker
  waitFor([&] { return pool.idleThreads() == 0; });
  std::atomic<bool> phantomRan{false};
  EXPECT_THROW(pool.submit([&] { phantomRan = true; }), std::runtime_error);
  gate.close();  // release the worker; it would now drain any stale queue
  waitFor([&] { return pool.tasksCompleted() == 1u; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(phantomRan.load()) << "a rejected task must never run";
  EXPECT_EQ(pool.tasksCompleted(), 1u);
}

TEST(PoolStats, ThreadsCreatedCountsGrowthNotChurn) {
  ThreadPool pool;
  EXPECT_EQ(pool.threadsCreated(), 0u) << "no eager workers";
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  // tasksCompleted is incremented under the same lock hold that parks
  // the worker idle again, so waiting on it (unlike on `ran`) guarantees
  // the next submit sees an idle worker and reuses it.
  waitFor([&] { return pool.tasksCompleted() == 1u; });
  EXPECT_EQ(pool.threadsCreated(), 1u) << "first submit spawns exactly one";
  for (std::size_t i = 0; i < 20; ++i) {
    pool.submit([&ran] { ++ran; });
    waitFor([&] { return pool.tasksCompleted() == i + 2; });
  }
  EXPECT_EQ(ran.load(), 21);
  EXPECT_EQ(pool.threadsCreated(), 1u) << "sequential load never grows the pool";
}

TEST(PoolStats, ThreadsCreatedSurvivesShutdown) {
  // threadsCreated is a lifetime statistic: it reports workers spawned,
  // not workers currently alive, so it must not drop to zero after the
  // workers are joined.
  ThreadPool pool;
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) pool.submit([&ran] { ++ran; });
  waitFor([&] { return ran.load() == 3; });
  const auto created = pool.threadsCreated();
  EXPECT_GE(created, 1u);
  pool.shutdown();
  EXPECT_EQ(pool.threadsCreated(), created) << "accounting survives the join";
  EXPECT_EQ(pool.idleThreads(), 0u) << "no workers remain parked";
}

TEST(PoolStats, BurstGrowthMatchesBlockedWorkers) {
  ThreadPool pool;
  BlockingQueue<int> gate(1);
  constexpr int kBlocked = 4;
  std::atomic<int> started{0};
  for (int i = 0; i < kBlocked; ++i) {
    pool.submit([&] {
      ++started;
      gate.take();
    });
  }
  waitFor([&] { return started.load() == kBlocked; });
  EXPECT_EQ(pool.threadsCreated(), static_cast<std::size_t>(kBlocked))
      << "every burst submit outran the blocked/parked workers, so each grew the pool";
  gate.close();
}

TEST(PoolGlobal, SingletonIsStable) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

}  // namespace
}  // namespace congen

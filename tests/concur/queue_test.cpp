// queue_test.cpp — the bounded blocking queue (Section III.B substrate).
#include "concur/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace congen {
namespace {

TEST(QueueBasics, FifoOrder) {
  BlockingQueue<int> q;
  q.put(1);
  q.put(2);
  q.put(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.take(), 1);
  EXPECT_EQ(q.take(), 2);
  EXPECT_EQ(q.take(), 3);
}

TEST(QueueBasics, TryOperations) {
  BlockingQueue<int> q(2);
  EXPECT_FALSE(q.tryTake().has_value()) << "empty tryTake fails without blocking";
  EXPECT_TRUE(q.tryPut(1));
  EXPECT_TRUE(q.tryPut(2));
  EXPECT_FALSE(q.tryPut(3)) << "full tryPut fails without blocking";
  EXPECT_EQ(q.tryTake(), 1);
  EXPECT_TRUE(q.tryPut(3));
}

TEST(QueueBasics, TryPutAfterCloseFails) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.tryPut(1));
  q.close();
  EXPECT_FALSE(q.tryPut(2)) << "closed tryPut is refused even with room";
  EXPECT_EQ(q.size(), 1u) << "the refused element was not half-enqueued";
}

TEST(QueueBasics, TryTakeDrainsAfterClose) {
  BlockingQueue<int> q;
  q.put(1);
  q.put(2);
  q.close();
  EXPECT_EQ(q.tryTake(), 1) << "buffered elements survive close via the try-API too";
  EXPECT_EQ(q.tryTake(), 2);
  EXPECT_FALSE(q.tryTake().has_value());
  EXPECT_FALSE(q.tryTake().has_value()) << "drained + closed stays failed";
}

TEST(QueueBasics, TryPutUnboundedNeverRefusesUntilClose) {
  BlockingQueue<int> q(0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(q.tryPut(i));
  q.close();
  EXPECT_FALSE(q.tryPut(1000));
  EXPECT_EQ(q.size(), 1000u);
}

TEST(QueueBasics, TryOpsOnMailbox) {
  // Capacity 1: tryPut toggles between accepted and refused as the slot
  // fills and empties — the non-blocking view of the M-var.
  BlockingQueue<int> mailbox(1);
  EXPECT_TRUE(mailbox.tryPut(1));
  EXPECT_FALSE(mailbox.tryPut(2)) << "occupied mailbox refuses";
  EXPECT_EQ(mailbox.tryTake(), 1);
  EXPECT_FALSE(mailbox.tryTake().has_value());
  EXPECT_TRUE(mailbox.tryPut(3)) << "slot reusable after tryTake";
  EXPECT_EQ(mailbox.take(), 3);
}

TEST(QueueBasics, TryPutReleasesBlockedTaker) {
  // A tryPut must wake a blocked take() just like put() does.
  BlockingQueue<int> q(1);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.take(), 7);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(q.tryPut(7));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(QueueBasics, TryTakeReleasesBlockedPutter) {
  // Symmetric: a tryTake on a full queue must wake a blocked put().
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.put(1));
  std::atomic<bool> done{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.put(2));
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.tryTake(), 1);
  producer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(q.take(), 2);
}

TEST(QueueBulk, PutAllDeliversInOrderAndConsumesTheBatch) {
  BlockingQueue<int> q;
  std::vector<int> batch{1, 2, 3, 4};
  EXPECT_EQ(q.putAll(batch), 4u);
  EXPECT_TRUE(batch.empty()) << "accepted elements are erased from the batch";
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(q.take(), i);
}

TEST(QueueBulk, PutAllEmptyBatchIsANoOp) {
  BlockingQueue<int> q(1);
  std::vector<int> batch;
  EXPECT_EQ(q.putAll(batch), 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(QueueBulk, PutAllAfterCloseAcceptsNothingAndKeepsTheBatch) {
  BlockingQueue<int> q(4);
  q.close();
  std::vector<int> batch{1, 2, 3};
  EXPECT_EQ(q.putAll(batch), 0u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2, 3})) << "the refused batch is left intact";
}

TEST(QueueBulk, PutAllBlockedAtCapacityAcceptsPrefixOnClose) {
  // A putAll that outgrows the bound parks on notFull_; close mid-batch
  // must release it with the accepted prefix erased and the unaccepted
  // suffix still in the caller's hands.
  BlockingQueue<int> q(2);
  std::vector<int> batch{1, 2, 3, 4, 5};
  std::atomic<std::size_t> accepted{99};
  std::thread producer([&] { accepted = q.putAll(batch); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.size(), 2u) << "the prefix filled the queue to its bound";
  q.close();
  producer.join();
  EXPECT_EQ(accepted.load(), 2u);
  EXPECT_EQ(batch, (std::vector<int>{3, 4, 5})) << "unaccepted suffix survives the close";
  EXPECT_EQ(q.take(), 1);
  EXPECT_EQ(q.take(), 2);
  EXPECT_FALSE(q.take().has_value());
}

TEST(QueueBulk, TakeUpToTakesAtMostMaxInFifoOrder) {
  BlockingQueue<int> q;
  for (int i = 1; i <= 5; ++i) q.put(i);
  EXPECT_EQ(q.takeUpTo(3), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.takeUpTo(10), (std::vector<int>{4, 5})) << "takeUpTo never blocks for more";
}

TEST(QueueBulk, TakeUpToZeroReturnsEmptyWithoutBlocking) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.takeUpTo(0).empty());
  q.put(1);
  EXPECT_TRUE(q.takeUpTo(0).empty());
  EXPECT_EQ(q.size(), 1u);
}

TEST(QueueBulk, TakeUpToBlocksUntilTheFirstElement) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.put(42);
  });
  EXPECT_EQ(q.takeUpTo(8), (std::vector<int>{42})) << "blocks like take(), returns what is there";
  producer.join();
}

TEST(QueueBulk, TakeUpToEmptyMeansClosedAndDrained) {
  BlockingQueue<int> q;
  q.put(1);
  q.close();
  EXPECT_EQ(q.takeUpTo(8), (std::vector<int>{1})) << "buffered elements survive close";
  EXPECT_TRUE(q.takeUpTo(8).empty()) << "empty result is the bulk poison pill";
}

TEST(QueueBulk, WaitingConsumersCountsBlockedTakers) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.waitingConsumers(), 0u);
  std::thread consumer([&] { EXPECT_EQ(q.take(), 5); });
  while (q.waitingConsumers() == 0) std::this_thread::yield();
  EXPECT_EQ(q.waitingConsumers(), 1u);
  q.put(5);
  consumer.join();
  EXPECT_EQ(q.waitingConsumers(), 0u);
}

TEST(QueueClose, TakeDrainsThenFails) {
  BlockingQueue<int> q;
  q.put(1);
  q.put(2);
  q.close();
  EXPECT_EQ(q.take(), 1) << "buffered elements survive close";
  EXPECT_EQ(q.take(), 2);
  EXPECT_FALSE(q.take().has_value()) << "drained + closed = failure";
  EXPECT_FALSE(q.put(9)) << "put after close is refused";
}

TEST(QueueClose, ReleasesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> released{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.take().has_value());
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(released.load());
}

TEST(QueueClose, ReleasesBlockedProducer) {
  BlockingQueue<int> q(1);
  q.put(0);  // now full
  std::atomic<bool> released{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.put(1)) << "blocked put returns false on close";
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  q.close();
  producer.join();
  EXPECT_TRUE(released.load());
}

TEST(QueueCapacity, BoundThrottlesProducer) {
  BlockingQueue<int> q(4);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      if (!q.put(i)) return;
      produced = i + 1;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LE(produced.load(), 5) << "producer cannot run ahead of the bound";
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.take(), i);
  producer.join();
}

TEST(QueueCapacity, ZeroMeansUnbounded) {
  BlockingQueue<int> q(0);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(q.tryPut(i));
  EXPECT_EQ(q.size(), 10000u);
}

class QueueConcurrencyProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QueueConcurrencyProperty, AllElementsDeliveredExactlyOnce) {
  const auto [producers, capacity] = GetParam();
  constexpr int kPerProducer = 500;
  BlockingQueue<int> q(static_cast<std::size_t>(capacity));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.put(p * kPerProducer + i);
    });
  }
  std::vector<int> got;
  std::thread consumer([&] {
    for (int i = 0; i < producers * kPerProducer; ++i) got.push_back(*q.take());
  });
  for (auto& t : threads) t.join();
  consumer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(producers * kPerProducer));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < producers * kPerProducer; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "element lost or duplicated";
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QueueConcurrencyProperty,
                         ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 16),
                                           std::make_pair(4, 1), std::make_pair(4, 64),
                                           std::make_pair(8, 8)));

TEST(QueueSingleSlot, ActsAsMailbox) {
  // Capacity 1 = the future / M-var of Section III.B.
  BlockingQueue<int> mailbox(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    mailbox.put(42);
  });
  EXPECT_EQ(mailbox.take(), 42) << "take blocks until defined";
  producer.join();
}

}  // namespace
}  // namespace congen

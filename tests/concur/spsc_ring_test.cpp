// spsc_ring_test.cpp — the lock-free SPSC pipe transport.
//
// Single-threaded tests exercise the index arithmetic (wrap-around,
// exact capacity, close/drain ordering); two-thread tests pin down the
// blocking contract the ring shares with BlockingQueue — QueueOpStatus
// precedence, timed expiry, and the register-then-recheck cancel path.
#include "concur/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "concur/cancel.hpp"
#include "concur/channel.hpp"

namespace congen {
namespace {

using namespace std::chrono_literals;

QueueDeadline after(std::chrono::milliseconds d) {
  return QueueDeadline{std::chrono::steady_clock::now() + d};
}

TEST(SpscRingBasics, FifoOrderAndExhaustion) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.tryPut(i));
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = ring.tryTake();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.tryTake().has_value());
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingBasics, ExactCapacityEvenWhenRoundedToPow2) {
  // Capacity 5 rounds the slot array to 8, but the bound stays 5: a
  // bounded pipe must throttle at its requested capacity exactly.
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 5u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.tryPut(i));
  EXPECT_FALSE(ring.tryPut(99)) << "slot 6 exists but the bound is 5";
  EXPECT_EQ(ring.size(), 5u);
}

TEST(SpscRingWrap, IndicesWrapAcrossTheMaskBoundary) {
  // A capacity-3 ring (4 slots) cycled many times: every element must
  // cross the mask wrap intact and in order.
  SpscRing<int> ring(3);
  int next = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.tryPut(next + i));
    for (int i = 0; i < 3; ++i) {
      auto v = ring.tryTake();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next + i);
    }
    next += 3;
  }
}

TEST(SpscRingWrap, BulkOpsWrapAcrossTheMaskBoundary) {
  SpscRing<int> ring(4);
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<int> batch{next, next + 1, next + 2};
    EXPECT_EQ(ring.putAll(batch), 3u);
    EXPECT_TRUE(batch.empty()) << "accepted prefix is erased";
    const auto got = ring.takeUpTo(8);
    ASSERT_EQ(got.size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], next + i);
    next += 3;
  }
}

TEST(SpscRingWrap, CapacityOneMailbox) {
  // The future/mailbox shape: every transfer crosses the wrap.
  SpscRing<int> ring(1);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ring.tryPut(i));
    EXPECT_FALSE(ring.tryPut(i)) << "capacity 1 is full after one put";
    auto v = ring.tryTake();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRingClose, FullRingDrainsAfterClose) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.tryPut(i));
  ring.close();
  EXPECT_FALSE(ring.tryPut(99)) << "closed ring rejects new elements";
  for (int i = 0; i < 4; ++i) {
    auto v = ring.take();
    ASSERT_TRUE(v.has_value()) << "elements published before close() survive it";
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.take().has_value()) << "then end-of-stream";
}

TEST(SpscRingClose, CloseUnblocksAParkedConsumer) {
  SpscRing<int> ring(4);
  std::atomic<bool> gotEnd{false};
  std::thread consumer([&] {
    EXPECT_FALSE(ring.take().has_value());
    gotEnd = true;
  });
  std::this_thread::sleep_for(20ms);  // let it park
  ring.close();
  consumer.join();
  EXPECT_TRUE(gotEnd.load());
}

TEST(SpscRingClose, CloseUnblocksAParkedProducerMidBatch) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.tryPut(0));
  ASSERT_TRUE(ring.tryPut(1));
  std::atomic<std::size_t> accepted{~std::size_t{0}};
  std::thread producer([&] {
    std::vector<int> batch{2, 3, 4};
    accepted = ring.putAll(batch);  // parks: ring is full
    EXPECT_EQ(batch.size(), 3u - accepted.load()) << "unaccepted suffix stays in the batch";
  });
  std::this_thread::sleep_for(20ms);
  ring.close();
  producer.join();
  EXPECT_LT(accepted.load(), 3u) << "close interrupted the bulk publication";
  // Whatever was accepted before the close is still deliverable.
  std::size_t drained = 0;
  while (ring.take()) ++drained;
  EXPECT_EQ(drained, 2u + accepted.load());
}

TEST(SpscRingTimed, TakeForExpiresOnEmpty) {
  SpscRing<int> ring(4);
  std::optional<int> out;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ring.takeFor(out, CancelToken{}, after(30ms)), QueueOpStatus::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
  EXPECT_FALSE(out.has_value());
  // Expiry does not poison the ring: a later element still flows.
  ASSERT_TRUE(ring.tryPut(7));
  EXPECT_EQ(ring.takeFor(out, CancelToken{}, after(1000ms)), QueueOpStatus::kOk);
  EXPECT_EQ(out, 7);
}

TEST(SpscRingTimed, PutForExpiresOnFull) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.tryPut(1));
  EXPECT_EQ(ring.putFor(2, CancelToken{}, after(30ms)), QueueOpStatus::kTimedOut);
  EXPECT_EQ(ring.size(), 1u) << "a timed-out put publishes nothing";
  ASSERT_TRUE(ring.tryTake().has_value());
  EXPECT_EQ(ring.putFor(2, CancelToken{}, after(1000ms)), QueueOpStatus::kOk);
}

TEST(SpscRingTimed, ElementBeatsDeadline) {
  // Precedence: a transfer that is possible happens, even with an
  // already-expired deadline.
  SpscRing<int> ring(4);
  ASSERT_TRUE(ring.tryPut(5));
  std::optional<int> out;
  EXPECT_EQ(ring.takeFor(out, CancelToken{}, after(-10ms)), QueueOpStatus::kOk);
  EXPECT_EQ(out, 5);
}

TEST(SpscRingCancel, CancelledBeatsEverything) {
  // kCancelled > transfer > kClosed: the full precedence order.
  SpscRing<int> ring(4);
  ASSERT_TRUE(ring.tryPut(1));
  ring.close();
  StopSource source;
  source.requestStop();
  std::optional<int> out;
  EXPECT_EQ(ring.takeFor(out, source.token(), {}), QueueOpStatus::kCancelled);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(ring.putFor(9, source.token(), {}), QueueOpStatus::kCancelled);
}

TEST(SpscRingCancel, ClosedBeatsTimedOut) {
  SpscRing<int> ring(4);
  ring.close();
  std::optional<int> out;
  EXPECT_EQ(ring.takeFor(out, CancelToken{}, after(-10ms)), QueueOpStatus::kClosed);
}

TEST(SpscRingCancel, CancelUnparksABlockedConsumer) {
  // The register-then-recheck race: the consumer must observe a cancel
  // that lands at any point relative to its park, never deadlocking.
  // Many short rounds to sample different interleavings.
  for (int round = 0; round < 50; ++round) {
    SpscRing<int> ring(2);
    StopSource source;
    std::atomic<bool> done{false};
    std::thread consumer([&] {
      std::optional<int> out;
      EXPECT_EQ(ring.takeFor(out, source.token(), {}), QueueOpStatus::kCancelled);
      done = true;
    });
    if (round % 2 == 0) std::this_thread::sleep_for(1ms);  // likely parked
    source.requestStop();
    consumer.join();
    EXPECT_TRUE(done.load());
  }
}

TEST(SpscRingCancel, CancelUnparksABlockedProducer) {
  for (int round = 0; round < 50; ++round) {
    SpscRing<int> ring(1);
    ASSERT_TRUE(ring.tryPut(0));
    StopSource source;
    std::thread producer([&] {
      EXPECT_EQ(ring.putFor(1, source.token(), {}), QueueOpStatus::kCancelled);
    });
    if (round % 2 == 0) std::this_thread::sleep_for(1ms);
    source.requestStop();
    producer.join();
    EXPECT_EQ(ring.size(), 1u);
  }
}

TEST(SpscRingHandoff, BlockingHandoffAcrossThreads) {
  // The real pipe shape: one producer thread, one consumer thread, a
  // ring far smaller than the stream, so both sides park and wake
  // repeatedly (and every element crosses the wrap many times).
  constexpr int kItems = 20000;
  SpscRing<int> ring(8);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ring.put(i));
    ring.close();
  });
  long long sum = 0;
  int count = 0;
  while (auto v = ring.take()) {
    EXPECT_EQ(*v, count);
    sum += *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(SpscRingHandoff, BulkHandoffAcrossThreads) {
  constexpr int kItems = 20000;
  SpscRing<int> ring(64);
  std::thread producer([&] {
    int next = 0;
    while (next < kItems) {
      std::vector<int> batch;
      for (int i = 0; i < 17 && next + i < kItems; ++i) batch.push_back(next + i);
      next += static_cast<int>(batch.size());
      while (!batch.empty()) ring.putAll(batch);
    }
    ring.close();
  });
  int expect = 0;
  for (;;) {
    const auto got = ring.takeUpTo(32);
    if (got.empty()) break;
    for (int v : got) EXPECT_EQ(v, expect++);
  }
  producer.join();
  EXPECT_EQ(expect, kItems);
}

TEST(SpscRingChannel, AutoSelectsRingForBoundedCapacity) {
  Channel<int> bounded(8);
  EXPECT_TRUE(bounded.lockFree());
  EXPECT_EQ(bounded.capacity(), 8u);
  Channel<int> future(1);
  EXPECT_TRUE(future.lockFree()) << "futures are capacity-1 pipes";
}

TEST(SpscRingChannel, AutoFallsBackToMutexQueue) {
  Channel<int> unbounded(0);
  EXPECT_FALSE(unbounded.lockFree()) << "a ring cannot be unbounded";
  Channel<int> huge(Channel<int>::kMaxSpscCapacity + 1);
  EXPECT_FALSE(huge.lockFree()) << "absurd capacities skip the pre-sized slot array";
}

TEST(SpscRingChannel, ExplicitTransportWins) {
  Channel<int> forcedMutex(8, ChannelTransport::kMutex);
  EXPECT_FALSE(forcedMutex.lockFree());
  Channel<int> forcedRing(16, ChannelTransport::kSpsc);
  EXPECT_TRUE(forcedRing.lockFree());
}

TEST(SpscRingChannel, ForwardsTheFullContract) {
  // One pass over every forwarded operation on the ring arm.
  Channel<int> ch(4);
  EXPECT_TRUE(ch.put(1));
  EXPECT_TRUE(ch.tryPut(2));
  std::vector<int> batch{3, 4};
  EXPECT_EQ(ch.putAll(batch), 2u);
  EXPECT_EQ(ch.size(), 4u);
  EXPECT_EQ(ch.waitingConsumers(), 0u);
  EXPECT_EQ(ch.take(), 1);
  EXPECT_EQ(ch.tryTake(), 2);
  EXPECT_EQ(ch.takeUpTo(4), (std::vector<int>{3, 4}));
  std::optional<int> out;
  EXPECT_EQ(ch.putFor(5, CancelToken{}, {}), QueueOpStatus::kOk);
  EXPECT_EQ(ch.takeFor(out, CancelToken{}, {}), QueueOpStatus::kOk);
  EXPECT_EQ(out, 5);
  ch.close();
  EXPECT_TRUE(ch.closed());
  std::vector<int> rest;
  EXPECT_EQ(ch.takeUpToFor(rest, 4, CancelToken{}, {}), QueueOpStatus::kClosed);
}

}  // namespace
}  // namespace congen

// pipe_test.cpp — the multithreaded generator proxy (|>, Section III.B).
#include "concur/pipe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "../testutil.hpp"
#include "runtime/error.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ints;

TEST(PipeBasics, StreamsAllResultsInOrder) {
  auto pipe = Pipe::create([] { return test::range(1, 100); });
  std::vector<std::int64_t> got;
  while (auto v = pipe->activate()) got.push_back(v->requireInt64());
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 1);
  EXPECT_FALSE(pipe->activate().has_value()) << "exhausted pipe stays exhausted";
}

TEST(PipeBasics, EmptyExpressionFailsImmediately) {
  auto pipe = Pipe::create([] { return FailGen::create(); });
  EXPECT_FALSE(pipe->activate().has_value());
}

TEST(PipeBasics, RunsInAnotherThread) {
  const auto consumerId = std::this_thread::get_id();
  std::atomic<bool> different{false};
  auto pipe = Pipe::create([consumerId, &different]() -> GenPtr {
    return CallbackGen::create([consumerId, &different]() -> CallbackGen::Puller {
      bool done = false;
      return [consumerId, &different, done]() mutable -> std::optional<Value> {
        if (done) return std::nullopt;
        done = true;
        different = std::this_thread::get_id() != consumerId;
        return Value::integer(1);
      };
    });
  });
  ASSERT_TRUE(pipe->activate().has_value());
  EXPECT_TRUE(different.load()) << "the piped expression runs on a pool thread";
}

TEST(PipeThrottle, CapacityBoundsProduction) {
  std::atomic<int> produced{0};
  auto pipe = Pipe::create(
      [&produced]() -> GenPtr {
        return CallbackGen::create([&produced]() -> CallbackGen::Puller {
          int n = 0;
          return [&produced, n]() mutable -> std::optional<Value> {
            if (n >= 1000) return std::nullopt;
            ++produced;
            return Value::integer(++n);
          };
        });
      },
      /*capacity=*/4);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(produced.load(), 6) << "bounded queue throttles the producer (Section III.B)";
  while (pipe->activate()) {
  }
  EXPECT_EQ(produced.load(), 1000);
}

TEST(PipeAbandon, DroppingThePipeDoesNotDeadlockTheProducer) {
  std::atomic<bool> producerExited{false};
  {
    auto pipe = Pipe::create(
        [&producerExited]() -> GenPtr {
          return CallbackGen::create([&producerExited]() -> CallbackGen::Puller {
            return [&producerExited]() -> std::optional<Value> {
              // Infinite supply: only queue-close can stop us. Flag exit
              // through a destructor-ordered sentinel below instead.
              return Value::integer(1);
            };
          });
        },
        /*capacity=*/2);
    ASSERT_TRUE(pipe->activate().has_value());
    // pipe destroyed here with the producer blocked on put().
  }
  // If close() did not release the producer, the pool thread would stay
  // blocked; give it a moment and verify the pool can still run work.
  std::atomic<bool> ran{false};
  ThreadPool::global().submit([&ran] { ran = true; });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!ran.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  (void)producerExited;
}

TEST(PipeError, ProducerExceptionRethrownAtConsumer) {
  auto pipe = Pipe::create([]() -> GenPtr {
    return CallbackGen::create([]() -> CallbackGen::Puller {
      return []() -> std::optional<Value> { throw errDivisionByZero(); };
    });
  });
  EXPECT_THROW(pipe->activate(), IconError) << "run-time errors cross the thread boundary";
}

TEST(PipeRefresh, RefreshedPipeRestartsFromScratch) {
  std::atomic<int> builds{0};
  auto factory = [&builds]() -> GenPtr {
    ++builds;
    return test::range(1, 3);
  };
  auto pipe = Pipe::create(factory);
  EXPECT_EQ(pipe->activate()->smallInt(), 1);
  auto fresh = rcStaticCast<Pipe>(pipe->refreshed());
  EXPECT_EQ(fresh->activate()->smallInt(), 1) << "^pipe starts over";
  EXPECT_GE(builds.load(), 2);
}

TEST(PipeEnvironment, SnapshotTakenAtCreation) {
  // The data race the paper's shadowing exists to prevent: mutate the
  // local right after creating the pipe; the pipe must see the old value.
  auto x = CellVar::create(Value::integer(10));
  GenFactory factory = [snapshot = CellVar::create(x->get())]() -> GenPtr {
    return VarGen::create(snapshot);
  };
  // shadowEnv-style: the snapshot cell above was filled at factory
  // *construction*; Pipe builds the body eagerly in its constructor.
  auto pipe = Pipe::create(factory);
  x->set(Value::integer(999));
  EXPECT_EQ(pipe->activate()->smallInt(), 10);
}

TEST(PipeChain, TwoStagePipeline) {
  // |> (x*2) over |> (1..50): chained pipes, order preserved end to end.
  auto stage1 = Pipe::create([] { return test::range(1, 50); });
  auto stage2 = Pipe::create([stage1]() -> GenPtr {
    return makeBinaryOpGen(
        "*", PromoteGen::create(ConstGen::create(Value::coexpr(stage1))), test::ci(2));
  });
  std::vector<std::int64_t> got;
  while (auto v = stage2->activate()) got.push_back(v->requireInt64());
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], 2 * (i + 1));
}

TEST(PipeQueueExposure, PublicQueueAllowsExtraManipulation) {
  // "The output blocking queue ... is exposed as a public field to
  // permit further manipulation."
  auto pipe = Pipe::create([] { return test::range(1, 3); }, 8);
  ASSERT_NE(pipe->queue(), nullptr);
  EXPECT_EQ(pipe->queue()->capacity(), 8u);
}

TEST(FutureTest, SingletonPipeIsAFuture) {
  FutureValue future([]() -> GenPtr {
    return CallbackGen::create([]() -> CallbackGen::Puller {
      bool done = false;
      return [done]() mutable -> std::optional<Value> {
        if (done) return std::nullopt;
        done = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Value::integer(7);
      };
    });
  });
  EXPECT_EQ(future.get()->smallInt(), 7) << "get blocks until the value is computed";
  EXPECT_EQ(future.get()->smallInt(), 7) << "get is idempotent";
}

TEST(FutureTest, FailedExpressionYieldsEmptyFuture) {
  FutureValue future([]() -> GenPtr { return FailGen::create(); });
  EXPECT_FALSE(future.get().has_value());
}

TEST(PipeKernelNode, MakePipeCreateGenYieldsPipeValue) {
  auto node = makePipeCreateGen([] { return test::range(5, 6); }, 4);
  auto v = node->nextValue();
  ASSERT_TRUE(v && v->isCoExpr());
  EXPECT_EQ(v->coExpr()->activate()->smallInt(), 5);
}

TEST(PipeBatching, BatchCapClampsToQueueCapacity) {
  // A batch larger than the queue could never flush in one wait cycle;
  // the cap is clamped at construction.
  auto pipe = Pipe::create([] { return test::range(1, 3); }, /*capacity=*/8,
                           ThreadPool::global(), /*batchCap=*/64);
  EXPECT_EQ(pipe->batchCap(), 8u);
}

TEST(PipeBatching, MailboxStaysUnbatched) {
  // Capacity 1 is the future/M-var: batching must disable itself so the
  // per-element rendezvous protocol (and its timing) is untouched.
  auto mailbox = Pipe::create([] { return test::range(1, 3); }, /*capacity=*/1,
                              ThreadPool::global(), /*batchCap=*/64);
  EXPECT_EQ(mailbox->batchCap(), 1u);
  std::vector<std::int64_t> got;
  while (auto v = mailbox->activate()) got.push_back(v->requireInt64());
  EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(PipeBatching, ExplicitBatchCapOneForcesPerElementPath) {
  auto pipe = Pipe::create([] { return test::range(1, 50); }, /*capacity=*/8,
                           ThreadPool::global(), /*batchCap=*/1);
  EXPECT_EQ(pipe->batchCap(), 1u);
  std::int64_t expect = 1;
  while (auto v = pipe->activate()) EXPECT_EQ(v->requireInt64(), expect++);
  EXPECT_EQ(expect, 51);
}

TEST(PipeBatching, BatchedStreamPreservesOrderAndCompleteness) {
  // Small queue + large stream: the adaptive accumulator grows and
  // shrinks across the run; the observable stream must be untouched.
  auto pipe = Pipe::create([] { return test::range(1, 500); }, /*capacity=*/4,
                           ThreadPool::global(), /*batchCap=*/4);
  std::int64_t expect = 1;
  while (auto v = pipe->activate()) EXPECT_EQ(v->requireInt64(), expect++);
  EXPECT_EQ(expect, 501);
  EXPECT_FALSE(pipe->activate().has_value()) << "exhausted pipe stays exhausted";
}

TEST(PipeBatching, RefreshedPipePreservesBatchCap) {
  auto pipe = Pipe::create([] { return test::range(1, 3); }, /*capacity=*/16,
                           ThreadPool::global(), /*batchCap=*/8);
  ASSERT_EQ(pipe->batchCap(), 8u);
  auto fresh = rcStaticCast<Pipe>(pipe->refreshed());
  EXPECT_EQ(fresh->batchCap(), 8u) << "^pipe must restart with the same transport knobs";
  EXPECT_EQ(fresh->activate()->smallInt(), 1);
}

TEST(PipeBatching, ValuesProducedBeforeAnErrorStillArriveFirst) {
  // The per-element protocol publishes each value before the body can
  // throw; the batched producer must match it — the buffered prefix is
  // flushed before the error crosses the thread boundary.
  auto pipe = Pipe::create(
      []() -> GenPtr {
        return CallbackGen::create([]() -> CallbackGen::Puller {
          int n = 0;
          return [n]() mutable -> std::optional<Value> {
            if (n >= 5) throw errDivisionByZero();
            return Value::integer(++n);
          };
        });
      },
      /*capacity=*/64, ThreadPool::global(), /*batchCap=*/64);
  std::vector<std::int64_t> got;
  try {
    while (auto v = pipe->activate()) got.push_back(v->requireInt64());
    FAIL() << "the producer's error must reach the consumer";
  } catch (const IconError&) {
  }
  EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3, 4, 5}))
      << "batching dropped or reordered values delivered before the error";
}

TEST(PipeStress, ManyConcurrentPipes) {
  std::vector<Rc<Pipe>> pipes;
  pipes.reserve(16);
  for (int p = 0; p < 16; ++p) {
    pipes.push_back(Pipe::create([p]() -> GenPtr { return test::range(p * 100, p * 100 + 99); },
                                 /*capacity=*/8));
  }
  for (int p = 0; p < 16; ++p) {
    std::int64_t count = 0;
    while (auto v = pipes[static_cast<std::size_t>(p)]->activate()) {
      EXPECT_EQ(v->requireInt64(), p * 100 + count);
      ++count;
    }
    EXPECT_EQ(count, 100);
  }
}

}  // namespace
}  // namespace congen

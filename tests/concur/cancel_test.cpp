// cancel_test.cpp — structured cancellation, deadlines, and failure
// containment (cancel.hpp, the queue *For family, and the pipe layer).
#include "concur/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "../testutil.hpp"
#include "concur/blocking_queue.hpp"
#include "concur/pipe.hpp"
#include "par/pipeline.hpp"
#include "runtime/error.hpp"

namespace congen {
namespace {

using namespace std::chrono_literals;

QueueDeadline after(std::chrono::milliseconds d) {
  return std::chrono::steady_clock::now() + d;
}

/// Generator yielding 1..n, then throwing the given Icon error.
GenPtr throwingAfter(int n, int errNumber) {
  return CallbackGen::create([n, errNumber]() -> CallbackGen::Puller {
    int i = 0;
    return [i, n, errNumber]() mutable -> std::optional<Value> {
      if (i >= n) throw IconError(errNumber, "synthetic");
      return Value::integer(++i);
    };
  });
}

/// Infinite integer supply.
GenPtr infinite() {
  return CallbackGen::create([]() -> CallbackGen::Puller {
    std::int64_t i = 0;
    return [i]() mutable -> std::optional<Value> { return Value::integer(++i); };
  });
}

// ---------------------------------------------------------------------
// Token / source / callback semantics
// ---------------------------------------------------------------------

TEST(CancelToken, DetachedTokenNeverCancels) {
  CancelToken t;
  EXPECT_FALSE(t.canBeCancelled());
  EXPECT_FALSE(t.cancelled());
}

TEST(StopSource, RequestStopIsIdempotentAndObserved) {
  StopSource s;
  auto t = s.token();
  EXPECT_TRUE(t.canBeCancelled());
  EXPECT_FALSE(t.cancelled());
  EXPECT_TRUE(s.requestStop()) << "first call performs the transition";
  EXPECT_FALSE(s.requestStop()) << "second call is a no-op";
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(s.stopRequested());
}

TEST(CancelCallback, InvokedOnRequestStop) {
  StopSource s;
  std::atomic<int> fired{0};
  CancelCallback cb(s.token(), [&] { ++fired; });
  EXPECT_EQ(fired.load(), 0);
  s.requestStop();
  EXPECT_EQ(fired.load(), 1);
  s.requestStop();
  EXPECT_EQ(fired.load(), 1) << "callbacks fire once";
}

TEST(CancelCallback, NotInvokedWhenRegisteringOnCancelledToken) {
  // The register/cancel race is closed by the *callers* re-checking
  // cancelled() after registration — running the callback inline here
  // would self-deadlock a caller that registers under its own lock.
  StopSource s;
  s.requestStop();
  std::atomic<int> fired{0};
  CancelCallback cb(s.token(), [&] { ++fired; });
  EXPECT_EQ(fired.load(), 0);
}

TEST(CancelCallback, UnregisteredCallbackNeverFires) {
  StopSource s;
  std::atomic<int> fired{0};
  { CancelCallback cb(s.token(), [&] { ++fired; }); }
  s.requestStop();
  EXPECT_EQ(fired.load(), 0);
}

TEST(StopSource, LinkToCascadesParentCancel) {
  StopSource parent;
  StopSource child;
  child.linkTo(parent.token());
  EXPECT_FALSE(child.stopRequested());
  parent.requestStop();
  EXPECT_TRUE(child.stopRequested()) << "parent cancel reaches linked child synchronously";
}

TEST(StopSource, LinkToAlreadyCancelledParentCancelsNow) {
  StopSource parent;
  parent.requestStop();
  StopSource child;
  child.linkTo(parent.token());
  EXPECT_TRUE(child.stopRequested());
}

TEST(CancelScope, AmbientTokenNestsAndRestores) {
  EXPECT_FALSE(CancelScope::current().canBeCancelled());
  StopSource outer;
  {
    CancelScope a(outer.token());
    EXPECT_TRUE(CancelScope::current().canBeCancelled());
    StopSource inner;
    inner.requestStop();
    {
      CancelScope b(inner.token());
      EXPECT_TRUE(CancelScope::current().cancelled());
    }
    EXPECT_FALSE(CancelScope::current().cancelled()) << "outer scope restored";
  }
  EXPECT_FALSE(CancelScope::current().canBeCancelled());
}

// ---------------------------------------------------------------------
// Cancellable / deadline-bounded queue operations
// ---------------------------------------------------------------------

TEST(QueueFor, FastPathsMatchPlainOperations) {
  BlockingQueue<int> q(4);
  StopSource s;
  const auto t = s.token();
  EXPECT_EQ(q.putFor(1, t), QueueOpStatus::kOk);
  std::optional<int> out;
  EXPECT_EQ(q.takeFor(out, t), QueueOpStatus::kOk);
  EXPECT_EQ(out, 1);
  q.close();
  EXPECT_EQ(q.putFor(2, t), QueueOpStatus::kClosed);
  EXPECT_EQ(q.takeFor(out, t), QueueOpStatus::kClosed);
  EXPECT_FALSE(out.has_value());
}

TEST(QueueFor, DeadlineExpiryReturnsTimedOut) {
  BlockingQueue<int> q(1);
  StopSource s;
  EXPECT_EQ(q.putFor(1, s.token()), QueueOpStatus::kOk);
  EXPECT_EQ(q.putFor(2, s.token(), after(30ms)), QueueOpStatus::kTimedOut) << "queue full";
  std::optional<int> out;
  EXPECT_EQ(q.takeFor(out, s.token()), QueueOpStatus::kOk);
  EXPECT_EQ(q.takeFor(out, s.token(), after(30ms)), QueueOpStatus::kTimedOut) << "queue empty";
  std::vector<int> batch;
  EXPECT_EQ(q.takeUpToFor(batch, 8, s.token(), after(30ms)), QueueOpStatus::kTimedOut);
}

TEST(QueueFor, CancelWakesBlockedPutWithinOneOperation) {
  BlockingQueue<int> q(1);
  StopSource s;
  ASSERT_EQ(q.putFor(1, s.token()), QueueOpStatus::kOk);  // now full
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_EQ(q.putFor(2, s.token()), QueueOpStatus::kCancelled);
    returned = true;
  });
  std::this_thread::sleep_for(20ms);  // let it block
  EXPECT_FALSE(returned.load());
  s.requestStop();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(q.size(), 1u) << "cancelled put publishes nothing";
}

TEST(QueueFor, CancelWakesBlockedTake) {
  BlockingQueue<int> q(4);
  StopSource s;
  std::thread consumer([&] {
    std::optional<int> out;
    EXPECT_EQ(q.takeFor(out, s.token()), QueueOpStatus::kCancelled);
    EXPECT_FALSE(out.has_value());
  });
  std::this_thread::sleep_for(20ms);
  s.requestStop();
  consumer.join();
}

TEST(QueueFor, CancelledTakeSkipsBufferedElements) {
  // Precedence: kCancelled beats element transfer. Cancellation is
  // abandonment — a cancelled consumer must not consume.
  BlockingQueue<int> q(4);
  StopSource s;
  ASSERT_EQ(q.putFor(7, s.token()), QueueOpStatus::kOk);
  s.requestStop();
  std::optional<int> out;
  EXPECT_EQ(q.takeFor(out, s.token()), QueueOpStatus::kCancelled);
  EXPECT_FALSE(out.has_value());
  std::vector<int> batch;
  EXPECT_EQ(q.takeUpToFor(batch, 4, s.token()), QueueOpStatus::kCancelled);
  EXPECT_TRUE(batch.empty());
}

TEST(QueueFor, ClosedQueueStillDrains) {
  BlockingQueue<int> q(4);
  StopSource s;
  ASSERT_EQ(q.putFor(7, s.token()), QueueOpStatus::kOk);
  q.close();
  std::optional<int> out;
  EXPECT_EQ(q.takeFor(out, s.token()), QueueOpStatus::kOk) << "close is end-of-stream, not abandonment";
  EXPECT_EQ(out, 7);
  EXPECT_EQ(q.takeFor(out, s.token()), QueueOpStatus::kClosed);
}

TEST(QueueFor, PutAllForReportsAcceptedPrefixOnCancel) {
  BlockingQueue<int> q(2);
  StopSource s;
  std::vector<int> batch{1, 2, 3, 4};
  std::size_t accepted = 0;
  std::thread canceller([&] {
    std::this_thread::sleep_for(30ms);
    s.requestStop();
  });
  const auto status = q.putAllFor(batch, accepted, s.token());
  canceller.join();
  EXPECT_EQ(status, QueueOpStatus::kCancelled);
  EXPECT_EQ(accepted, 2u) << "prefix up to capacity was published";
  EXPECT_EQ(batch.size(), 2u) << "accepted prefix erased, suffix kept";
}

TEST(QueueFor, DetachedTokenWorksWithDeadlines) {
  BlockingQueue<int> q(1);
  ASSERT_EQ(q.putFor(1, CancelToken{}), QueueOpStatus::kOk);
  EXPECT_EQ(q.putFor(2, CancelToken{}, after(30ms)), QueueOpStatus::kTimedOut);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(PoolCancel, CancelledTaskBodyIsSkipped) {
  ThreadPool pool;
  StopSource s;
  s.requestStop();
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }, s.token());
  pool.shutdown();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(pool.tasksCompleted(), 1u) << "the wrapper still completes";
}

// ---------------------------------------------------------------------
// Pipe cancellation and deadlines
// ---------------------------------------------------------------------

TEST(PipeCancel, CancelUnblocksProducerOnFullQueue) {
  ThreadPool pool;
  auto pipe = Pipe::create([] { return infinite(); }, /*capacity=*/2, pool);
  // Wait until the producer has filled the queue and is blocked in put.
  while (pipe->queue()->size() < 2) std::this_thread::sleep_for(1ms);
  pipe->cancel();
  // The producer must return within one queue operation: its task
  // completes and closes the queue without anyone draining it.
  pool.shutdown();
  EXPECT_EQ(pool.tasksCompleted(), 1u);
  EXPECT_TRUE(pipe->queue()->closed());
  EXPECT_FALSE(pipe->activate().has_value()) << "cancelled pipe fails, not blocks";
  EXPECT_FALSE(pipe->activate().has_value()) << "and stays failed";
}

TEST(PipeCancel, FourStageChainUnblocksEveryProducer) {
  // The acceptance scenario: a 4-stage chain, every queue full, cancel
  // only the most-downstream pipe — all four producers must return.
  ThreadPool pool;
  auto p1 = Pipe::create([] { return infinite(); }, 2, pool, /*batchCap=*/1);
  auto p2 = Pipe::create([p1]() -> GenPtr { return PromoteGen::create(ConstGen::create(Value::coexpr(p1))); },
                         2, pool, 1);
  auto p3 = Pipe::create([p2]() -> GenPtr { return PromoteGen::create(ConstGen::create(Value::coexpr(p2))); },
                         2, pool, 1);
  auto p4 = Pipe::create([p3]() -> GenPtr { return PromoteGen::create(ConstGen::create(Value::coexpr(p3))); },
                         2, pool, 1);
  p1->cancelWith(p2->cancelToken());
  p2->cancelWith(p3->cancelToken());
  p3->cancelWith(p4->cancelToken());
  // Let every stage fill: all four queues at capacity, all four
  // producers blocked in a put.
  while (p1->queue()->size() < 2 || p2->queue()->size() < 2 || p3->queue()->size() < 2 ||
         p4->queue()->size() < 2) {
    std::this_thread::sleep_for(1ms);
  }
  p4->cancel();
  pool.shutdown();  // joins all workers: hangs (and times out) if any producer stayed blocked
  EXPECT_EQ(pool.tasksCompleted(), 4u);
  EXPECT_TRUE(p1->queue()->closed());
  EXPECT_TRUE(p2->queue()->closed());
  EXPECT_TRUE(p3->queue()->closed());
  EXPECT_TRUE(p4->queue()->closed());
}

TEST(PipeCancel, PipelineBuildCancellableStopsAllStages) {
  Pipeline pl(/*pipeCapacity=*/2, ThreadPool::global(), /*pipeBatch=*/1);
  auto built = pl.buildCancellable([] { return infinite(); });
  ASSERT_TRUE(built.gen->nextValue().has_value()) << "pipeline streams before cancel";
  built.stop.requestStop();
  // After the cancel, the source pipe's producer exits and closes its
  // queue; the consumer-visible stream ends (possibly after buffered
  // values drain).
  int remaining = 0;
  while (built.gen->nextValue()) ++remaining;
  EXPECT_LE(remaining, 4) << "only the already-buffered prefix may still arrive";
}

TEST(PipeDeadline, ActivateUntilTimesOutAndStaysReactivatable) {
  ThreadPool pool;
  auto gate = std::make_shared<BlockingQueue<Value>>(4);
  // Producer forwards whatever the gate supplies — controllable latency.
  auto pipe = Pipe::create(
      [gate]() -> GenPtr {
        return CallbackGen::create([gate]() -> CallbackGen::Puller {
          return [gate]() -> std::optional<Value> { return gate->take(); };
        });
      },
      4, pool);
  EXPECT_FALSE(pipe->activateUntil(std::chrono::steady_clock::now() + 30ms).has_value())
      << "no value within the deadline: fail";
  gate->put(Value::integer(42));
  auto v = pipe->activate();
  ASSERT_TRUE(v.has_value()) << "a timed-out pipe is NOT finished";
  EXPECT_EQ(v->requireInt64(), 42);
  gate->close();
  EXPECT_FALSE(pipe->activate().has_value());
}

TEST(CoExpr, BaseActivateUntilIgnoresDeadline) {
  // A plain co-expression computes on the caller's thread; the deadline
  // bounds waiting, and the base class never waits.
  auto c = CoExpression::create([] { return test::range(1, 3); });
  auto v = c->activateUntil(std::chrono::steady_clock::now() - 1h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->requireInt64(), 1);
}

// ---------------------------------------------------------------------
// Failure containment
// ---------------------------------------------------------------------

TEST(PipeError, DeliveredPrefixThenErrorThenDeterministicFailure) {
  ThreadPool pool;
  auto pipe = Pipe::create([] { return throwingAfter(3, 201); }, 16, pool);
  EXPECT_EQ(pipe->activate()->requireInt64(), 1);
  EXPECT_EQ(pipe->activate()->requireInt64(), 2);
  EXPECT_EQ(pipe->activate()->requireInt64(), 3);
  try {
    pipe->activate();
    FAIL() << "expected IconError 201";
  } catch (const IconError& e) {
    EXPECT_EQ(e.number(), 201);
  }
  // Satellite regression: an activation after the consumed error is a
  // plain deterministic failure — it never blocks, never re-throws.
  EXPECT_FALSE(pipe->activate().has_value());
  EXPECT_FALSE(pipe->activate().has_value());
}

TEST(PipeError, NonIconProducerExceptionWrappedAsStageFailed) {
  ThreadPool pool;
  auto pipe = Pipe::create(
      []() -> GenPtr {
        return CallbackGen::create([]() -> CallbackGen::Puller {
          return []() -> std::optional<Value> { throw std::runtime_error("boom"); };
        });
      },
      4, pool);
  try {
    pipe->activate();
    FAIL() << "expected IconError 801";
  } catch (const IconError& e) {
    EXPECT_EQ(e.number(), 801);
    EXPECT_NE(e.message().find("boom"), std::string::npos) << "original cause preserved";
  }
}

TEST(PipeError, ErroringStageCancelsLinkedUpstream) {
  ThreadPool pool;
  auto upstream = Pipe::create([] { return infinite(); }, 2, pool, 1);
  auto failing = Pipe::create(
      []() -> GenPtr {
        return CallbackGen::create([]() -> CallbackGen::Puller {
          return []() -> std::optional<Value> { throw errDivisionByZero(); };
        });
      },
      2, pool, 1);
  upstream->cancelWith(failing->cancelToken());
  EXPECT_THROW(failing->activate(), IconError);
  // The consumer may be woken mid-cascade (its wakeup callback runs
  // before the upstream link's), so poll rather than assert instantly.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!upstream->cancelRequested() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(upstream->cancelRequested()) << "stage error cascades to its producers";
  pool.shutdown();  // both producers must have exited
  EXPECT_EQ(pool.tasksCompleted(), 2u);
}

TEST(FutureError, GetRethrowsOnEveryCall) {
  FutureValue fut([]() -> GenPtr {
    return CallbackGen::create([]() -> CallbackGen::Puller {
      return []() -> std::optional<Value> { throw errDivisionByZero(); };
    });
  });
  for (int i = 0; i < 3; ++i) {
    try {
      fut.get();
      FAIL() << "expected IconError on call " << i;
    } catch (const IconError& e) {
      EXPECT_EQ(e.number(), 201) << "same error every time, never a silent failure";
    }
  }
}

TEST(FutureError, FailureIsNotAnError) {
  FutureValue fut([]() -> GenPtr { return FailGen::create(); });
  EXPECT_FALSE(fut.get().has_value());
  EXPECT_FALSE(fut.get().has_value());
}

TEST(PipeDump, DumpAllReportsLivePipes) {
  ThreadPool pool;
  auto pipe = Pipe::create([] { return test::range(1, 4); }, 8, pool);
  while (!pipe->queue()->closed()) std::this_thread::sleep_for(1ms);
  std::ostringstream os;
  Pipe::dumpAll(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("live pipes"), std::string::npos);
  EXPECT_NE(dump.find("closed=1"), std::string::npos);
}

}  // namespace
}  // namespace congen

// annotations_test.cpp — the scoped-annotation metaparser (Section IV).
#include "meta/annotations.hpp"

#include <gtest/gtest.h>

namespace congen::meta {
namespace {

TEST(AnnotationForms, BareAttributeForm) {
  const auto regions = parseAnnotations(R"(before @<script lang="junicon"> x := 1 @</script> after)");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].tag, "script");
  EXPECT_EQ(regions[0].attr("lang"), "junicon");
  EXPECT_FALSE(regions[0].selfClosing);
}

TEST(AnnotationForms, ParenthesizedForm) {
  const auto regions = parseAnnotations(R"(@<script(lang="junicon", mode=strict)> e @</script>)");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].attr("lang"), "junicon");
  EXPECT_EQ(regions[0].attr("mode"), "strict") << "bare attribute values accepted";
}

TEST(AnnotationForms, SelfClosingForms) {
  const auto r1 = parseAnnotations(R"(@<marker kind=probe/>)");
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1[0].selfClosing);
  EXPECT_EQ(r1[0].attr("kind"), "probe");
  EXPECT_EQ(r1[0].innerBegin, r1[0].innerEnd);

  const auto r2 = parseAnnotations(R"(@<marker(kind=probe)/>)");
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_TRUE(r2[0].selfClosing);
}

TEST(AnnotationForms, QualifiedTagNames) {
  const auto regions =
      parseAnnotations("@<edu.uidaho.junicon:script lang=x> e @</edu.uidaho.junicon:script>");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].tag, "edu.uidaho.junicon:script");
}

TEST(AnnotationForms, ValuelessAttribute) {
  const auto regions = parseAnnotations("@<script interactive lang=junicon> e @</script>");
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_TRUE(regions[0].attrs.contains("interactive"));
  EXPECT_EQ(regions[0].attr("interactive"), "");
}

TEST(AnnotationContent, InnerSpanIsExact) {
  const std::string src = "A@<t>INNER@</t>B";
  const auto regions = parseAnnotations(src);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(src.substr(regions[0].innerBegin, regions[0].innerEnd - regions[0].innerBegin),
            "INNER");
  EXPECT_EQ(src.substr(regions[0].outerBegin, regions[0].outerEnd - regions[0].outerBegin),
            "@<t>INNER@</t>");
}

TEST(AnnotationNesting, RegionsNest) {
  // "Like XML, such annotations ... can also be nested."
  const auto regions = parseAnnotations("@<outer>a @<inner lang=java> j @</inner> b@</outer>");
  ASSERT_EQ(regions.size(), 1u);
  ASSERT_EQ(regions[0].children.size(), 1u);
  EXPECT_EQ(regions[0].children[0].tag, "inner");
  EXPECT_EQ(regions[0].children[0].attr("lang"), "java");
}

TEST(AnnotationNesting, SiblingsAtTopLevel) {
  const auto regions = parseAnnotations("@<a>1@</a> gap @<b>2@</b>");
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].tag, "a");
  EXPECT_EQ(regions[1].tag, "b");
}

TEST(HostObliviousness, AnnotationsInsideHostStringsIgnored) {
  // The metaparser only understands host literals and comments — an
  // annotation-shaped substring inside them must not open a region.
  EXPECT_TRUE(parseAnnotations(R"(const char* s = "@<script>not a region@</script>";)").empty());
  EXPECT_TRUE(parseAnnotations("// @<script> comment @</script>\nint x;").empty());
  EXPECT_TRUE(parseAnnotations("/* @<script> block comment @</script> */").empty());
  EXPECT_TRUE(parseAnnotations("char c = '@';").empty());
}

TEST(HostObliviousness, EscapedQuotesInHostStrings) {
  EXPECT_TRUE(parseAnnotations(R"(const char* s = "quote \" then @<t>x@</t>";)").empty());
}

TEST(HostObliviousness, HostCodeNeedsNoValidSyntax) {
  // "We do not need parsers for Java or Groovy" — arbitrary host text
  // around regions is fine.
  const auto regions = parseAnnotations("%%%! if ( { ] @<t>e@</t> ???");
  ASSERT_EQ(regions.size(), 1u);
}

TEST(AnnotationErrors, UnterminatedRegion) {
  EXPECT_THROW(parseAnnotations("@<t> never closed"), AnnotationError);
}

TEST(AnnotationErrors, MismatchedCloseTag) {
  EXPECT_THROW(parseAnnotations("@<a> x @</b>"), AnnotationError);
}

TEST(AnnotationErrors, StrayClose) {
  EXPECT_THROW(parseAnnotations("text @</a>"), AnnotationError);
}

TEST(TransformRegions, ReplacesRegionKeepsHost) {
  const std::string out = transformRegions(
      "keep1 @<x>BODY@</x> keep2",
      [](const Region& r, const std::string& inner) { return "[" + r.tag + ":" + inner + "]"; });
  EXPECT_EQ(out, "keep1 [x:BODY] keep2");
}

TEST(TransformRegions, InnermostOutwardsOrder) {
  // "Each embedded region is transformed and injected into the
  // surrounding context, from the innermost outwards."
  std::vector<std::string> order;
  const std::string out =
      transformRegions("@<outer>A@<inner>B@</inner>C@</outer>",
                       [&order](const Region& r, const std::string& inner) {
                         order.push_back(r.tag);
                         return "(" + inner + ")";
                       });
  EXPECT_EQ(order, (std::vector<std::string>{"inner", "outer"}));
  EXPECT_EQ(out, "(A(B)C)");
}

TEST(TransformRegions, SelfClosingGetsEmptyInner) {
  const std::string out =
      transformRegions("x @<probe/> y", [](const Region&, const std::string& inner) {
        EXPECT_TRUE(inner.empty());
        return "P";
      });
  EXPECT_EQ(out, "x P y");
}

TEST(TransformRegions, NoRegionsIsIdentity) {
  const std::string src = "int main() { return 0; } // plain host code";
  EXPECT_EQ(transformRegions(src, [](const Region&, const std::string& i) { return i; }), src);
}

TEST(AnnotationContent, JuniconDivisionNotMistakenForComment) {
  // a / b inside an embedded region must not start a host comment scan.
  const auto regions = parseAnnotations("@<t> a / b @</t>");
  ASSERT_EQ(regions.size(), 1u);
}

}  // namespace
}  // namespace congen::meta

// trace_test.cpp — the monitoring facility (the paper's Section IX
// future-work item): events over the uniform next() protocol.
#include "kernel/trace.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "interp/interpreter.hpp"

namespace congen {
namespace {

using test::ci;
using test::range;

class TraceGuard {
 public:
  ~TraceGuard() { trace::remove(); }
};

TEST(TraceTest, DisabledByDefault) {
  EXPECT_FALSE(trace::enabled());
  // Iteration without a hook must behave normally.
  EXPECT_EQ(test::ints(range(1, 3)).size(), 3u);
}

TEST(TraceTest, EventsCoverResumeProduceFail) {
  TraceGuard guard;
  std::vector<trace::EventKind> kinds;
  trace::install([&kinds](const trace::Event& e) { kinds.push_back(e.kind); });
  EXPECT_TRUE(trace::enabled());

  auto g = ci(7);
  g->nextValue();   // produce
  g->nextValue();   // fail
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], trace::EventKind::Resume);
  EXPECT_EQ(kinds[1], trace::EventKind::Produce);
  EXPECT_EQ(kinds[2], trace::EventKind::Resume);
  EXPECT_EQ(kinds[3], trace::EventKind::Fail);
}

TEST(TraceTest, ProduceCarriesValueAndType) {
  TraceGuard guard;
  std::vector<std::pair<std::string, std::string>> produces;  // (type, value image)
  trace::install([&produces](const trace::Event& e) {
    if (e.kind == trace::EventKind::Produce) {
      produces.emplace_back(e.nodeType, e.value ? e.value->image() : "?");
    }
  });
  RangeGen::create(Value::integer(5), Value::integer(6), Value::integer(1))->collect();
  ASSERT_EQ(produces.size(), 2u);
  EXPECT_NE(produces[0].first.find("RangeGen"), std::string::npos) << "demangled type name";
  EXPECT_EQ(produces[0].second, "5");
  EXPECT_EQ(produces[1].second, "6");
}

TEST(TraceTest, DepthTracksNesting) {
  TraceGuard guard;
  int maxDepth = 0;
  trace::install([&maxDepth](const trace::Event& e) { maxDepth = std::max(maxDepth, e.depth); });
  // A product over a range nests: Product -> Range.
  ProductGen::create(range(1, 2), ci(9))->collect();
  EXPECT_GE(maxDepth, 1);
}

TEST(TraceTest, CountersMatchManualCounts) {
  TraceGuard guard;
  trace::installCounting();
  auto g = RangeGen::create(Value::integer(1), Value::integer(10), Value::integer(1));
  g->collect();  // 10 produces + 1 fail at the root
  const auto c = trace::counters();
  EXPECT_EQ(c.produces, 10u);
  EXPECT_EQ(c.failures, 1u);
  EXPECT_EQ(c.resumes, c.produces + c.failures) << "every resume resolves";
}

TEST(TraceTest, WholeProgramMonitoring) {
  // Monitoring an interpreter run end to end: the counts expose the
  // amount of kernel work a program performs.
  TraceGuard guard;
  interp::Interpreter interp;
  interp.load("def f(n) { local i; every i := 1 to n do suspend i * i; }");
  auto warm = interp.eval("f(10)");  // compile outside the measured region

  trace::installCounting();
  warm->collect();
  const auto c = trace::counters();
  EXPECT_GT(c.resumes, 30u) << "a real program touches many nodes";
  EXPECT_GT(c.produces, 10u);
  trace::remove();

  // After removal the counters stop moving.
  const auto frozen = trace::counters();
  interp.evalAll("f(5)");
  EXPECT_EQ(trace::counters().resumes, frozen.resumes);
}

TEST(TraceTest, FormatIsReadable) {
  trace::Event e;
  e.kind = trace::EventKind::Produce;
  e.node = nullptr;
  e.nodeType = "congen::ProductGen";
  e.depth = 2;
  const Value v = Value::integer(42);
  e.value = &v;
  EXPECT_EQ(trace::format(e), "| | ProductGen -> 42");
  e.kind = trace::EventKind::Fail;
  e.value = nullptr;
  e.depth = 0;
  EXPECT_EQ(trace::format(e), "ProductGen =| fail");
}

TEST(TraceTest, RemoveRestoresFastPath) {
  {
    TraceGuard guard;
    trace::install([](const trace::Event&) {});
  }
  EXPECT_FALSE(trace::enabled());
}

}  // namespace
}  // namespace congen

// gen_basic_test.cpp — leaf generators and the restart-after-failure
// protocol that the whole kernel builds on.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "runtime/error.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;

TEST(ConstGenTest, SingletonPerCycle) {
  auto g = ci(42);
  EXPECT_EQ(g->nextValue()->smallInt(), 42);
  EXPECT_FALSE(g->nextValue().has_value()) << "exhausted after one result";
  // The paper: "after failure, the iterator is then restarted on the
  // following next()".
  EXPECT_EQ(g->nextValue()->smallInt(), 42) << "auto-restart after failure";
}

TEST(ConstGenTest, ExplicitRestartMidCycle) {
  auto g = ci(7);
  ASSERT_TRUE(g->nextValue().has_value());
  g->restart();
  EXPECT_EQ(g->nextValue()->smallInt(), 7);
}

TEST(VarGenTest, YieldsAssignableReference) {
  auto cell = CellVar::create(Value::integer(10));
  auto g = VarGen::create(cell);
  auto r = g->next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value.smallInt(), 10);
  ASSERT_NE(r->ref, nullptr) << "variables carry their location";
  r->ref->set(Value::integer(99));
  EXPECT_EQ(cell->get().smallInt(), 99);
}

TEST(VarGenTest, ReadsFreshValueEachCycle) {
  auto cell = CellVar::create(Value::integer(1));
  auto g = VarGen::create(cell);
  EXPECT_EQ(g->nextValue()->smallInt(), 1);
  EXPECT_FALSE(g->nextValue().has_value());
  cell->set(Value::integer(2));
  EXPECT_EQ(g->nextValue()->smallInt(), 2) << "restarted read sees the new value";
}

TEST(NullFailGen, Protocol) {
  auto n = NullGen::create();
  EXPECT_TRUE(n->nextValue()->isNull());
  EXPECT_FALSE(n->nextValue().has_value());
  auto f = FailGen::create();
  EXPECT_FALSE(f->nextValue().has_value());
  EXPECT_FALSE(f->nextValue().has_value());
}

TEST(RangeGenTest, AscendingDescending) {
  EXPECT_EQ(ints(RangeGen::create(Value::integer(1), Value::integer(5), Value::integer(1))),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ints(RangeGen::create(Value::integer(10), Value::integer(1), Value::integer(-3))),
            (std::vector<std::int64_t>{10, 7, 4, 1}));
  EXPECT_EQ(ints(RangeGen::create(Value::integer(3), Value::integer(1), Value::integer(1))),
            (std::vector<std::int64_t>{})) << "empty ascending range";
}

TEST(RangeGenTest, ZeroStepIsError) {
  EXPECT_THROW(RangeGen::create(Value::integer(1), Value::integer(5), Value::integer(0)),
               IconError);
}

TEST(RangeGenTest, RealAndBigRanges) {
  auto g = RangeGen::create(Value::real(0.5), Value::real(2.0), Value::real(0.5));
  std::vector<double> out;
  while (auto v = g->nextValue()) out.push_back(v->real());
  EXPECT_EQ(out, (std::vector<double>{0.5, 1.0, 1.5, 2.0}));

  const BigInt big = BigInt{2}.pow(80);
  auto bg = RangeGen::create(Value::integer(big), Value::integer(big + BigInt{2}),
                             Value::integer(1));
  EXPECT_EQ(bg->collect().size(), 3u) << "BigInt bounds iterate";
}

TEST(RangeGenTest, RestartsAfterExhaustion) {
  auto g = RangeGen::create(Value::integer(1), Value::integer(2), Value::integer(1));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2})) << "second full cycle";
}

TEST(ValuesGenTest, IterationAndRestart) {
  auto g = test::vals({3, 1, 4});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{3, 1, 4}));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{3, 1, 4}));
}

TEST(CallbackGenTest, BridgesHostPullers) {
  int created = 0;
  auto g = CallbackGen::create([&created]() -> CallbackGen::Puller {
    ++created;
    int n = 0;
    return [n]() mutable -> std::optional<Value> {
      if (n >= 3) return std::nullopt;
      return Value::integer(++n);
    };
  });
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(created, 1);
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 3})) << "restart re-arms the puller";
  EXPECT_EQ(created, 2);
}

TEST(GenHelpers, LastAndCollect) {
  EXPECT_EQ(test::range(1, 4)->last()->smallInt(), 4);
  EXPECT_FALSE(FailGen::create()->last().has_value());
  EXPECT_EQ(test::range(1, 3)->collect().size(), 3u);
}

}  // namespace
}  // namespace congen

// ops_test.cpp — operations over generator operands: goal-directed
// filtering, invocation flattening, assignment, subscripts.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "builtins/builtins.hpp"
#include "runtime/error.hpp"
#include "runtime/proc.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;
using test::range;

TEST(BinOpTest, CrossProductOfOperands) {
  // (1|2) + (10|20) = 11 21 12 22.
  auto g = makeBinaryOpGen("+", AltGen::create(ci(1), ci(2)), AltGen::create(ci(10), ci(20)));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{11, 21, 12, 22}));
}

TEST(BinOpTest, ComparisonFiltersSearch) {
  // (1 to 10) > 5 — wait: Icon's x > y yields y; search over the left
  // operand keeps going after failures. 6>5..10>5 succeed, each yielding 5.
  auto g = makeBinaryOpGen(">", range(1, 10), ci(5));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{5, 5, 5, 5, 5}));
}

TEST(BinOpTest, FirstSolutionShortCircuit) {
  // Bounded use: find the first pair (i,j) of ranges with i*j = 12.
  auto i = CellVar::create();
  auto j = CellVar::create();
  auto g = LimitGen::create(
      ProductGen::create(
          InGen::create(i, range(1, 6)),
          ProductGen::create(InGen::create(j, range(1, 6)),
                             makeBinaryOpGen("=", ci(12),
                                             makeBinaryOpGen("*", VarGen::create(i),
                                                             VarGen::create(j))))),
      1);
  ASSERT_TRUE(g->nextValue().has_value());
  EXPECT_EQ(i->get().smallInt(), 2);
  EXPECT_EQ(j->get().smallInt(), 6);
}

TEST(UnOpTest, NegateAndSize) {
  EXPECT_EQ(ints(makeUnaryOpGen("-", range(1, 3))), (std::vector<std::int64_t>{-1, -2, -3}));
  EXPECT_EQ(makeUnaryOpGen("*", ConstGen::create(Value::string("word")))->nextValue()->smallInt(),
            4);
}

TEST(InvokeTest, DelegatesToReturnedGenerator) {
  // A generator function invoked once delegates its whole sequence.
  auto gen3 = ProcImpl::create("gen3", [](std::vector<Value>) -> GenPtr {
    return test::vals({7, 8, 9});
  });
  auto g = makeInvokeGen(ConstGen::create(Value::proc(gen3)), {});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{7, 8, 9}));
}

TEST(InvokeTest, ArgumentsFlattenedOverProduct) {
  // f(1|2, 10|20) invokes f four times (Section II: operations map over
  // the cross-product of their argument sequences).
  std::vector<std::vector<Value>> calls;
  auto record = ProcImpl::create("record", [&calls](std::vector<Value> args) -> GenPtr {
    calls.push_back(args);
    return ConstGen::create(Value::integer(0));
  });
  auto g = makeInvokeGen(ConstGen::create(Value::proc(record)),
                         {AltGen::create(ci(1), ci(2)), AltGen::create(ci(10), ci(20))});
  EXPECT_EQ(ints(g).size(), 4u);
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0][0].smallInt(), 1);
  EXPECT_EQ(calls[0][1].smallInt(), 10);
  EXPECT_EQ(calls[1][1].smallInt(), 20) << "rightmost operand varies fastest";
  EXPECT_EQ(calls[2][0].smallInt(), 2);
}

TEST(InvokeTest, FailingArgumentPreventsCall) {
  bool called = false;
  auto f = ProcImpl::create("f", [&called](std::vector<Value>) -> GenPtr {
    called = true;
    return NullGen::create();
  });
  auto g = makeInvokeGen(ConstGen::create(Value::proc(f)), {FailGen::create()});
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_FALSE(called) << "f(x) does not call f when x fails (Section II)";
}

TEST(InvokeTest, GeneratorCallee) {
  // (f | g)(x) iterates first through f(x) then g(x) — function names
  // can be generator expressions (Section II).
  auto doubler = builtins::makeNative("d", [](std::vector<Value>& a) {
    return ops::mul(a.at(0), Value::integer(2));
  });
  auto tripler = builtins::makeNative("t", [](std::vector<Value>& a) {
    return ops::mul(a.at(0), Value::integer(3));
  });
  auto g = makeInvokeGen(
      AltGen::create(ConstGen::create(Value::proc(doubler)), ConstGen::create(Value::proc(tripler))),
      {ci(5)});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{10, 15}));
}

TEST(InvokeTest, NonProcCalleeErrors) {
  auto g = makeInvokeGen(ci(42), {});
  EXPECT_THROW(g->nextValue(), IconError);
}

TEST(ToByTest, OperandsAreGenerators) {
  // (1|2) to 3 — two ranges back to back.
  auto g = makeToByGen(AltGen::create(ci(1), ci(2)), ci(3), nullptr);
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 3, 2, 3}));
}

TEST(AssignTest, YieldsVariableAndStores) {
  auto x = CellVar::create();
  auto g = makeAssignGen(VarGen::create(x), ci(5));
  auto r = g->next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value.smallInt(), 5);
  EXPECT_EQ(r->ref, x);
  EXPECT_EQ(x->get().smallInt(), 5);
}

TEST(AssignTest, BacktracksOverRhs) {
  // x := (1|2|3) assigns each alternative on backtracking.
  auto x = CellVar::create();
  auto g = makeAssignGen(VarGen::create(x), test::vals({1, 2, 3}));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(x->get().smallInt(), 3);
}

TEST(AssignTest, NonVariableLhsErrors) {
  auto g = makeAssignGen(ci(1), ci(2));
  EXPECT_THROW(g->nextValue(), IconError);
}

TEST(AugAssignTest, AppliesOperator) {
  auto x = CellVar::create(Value::integer(10));
  EXPECT_EQ(makeAugAssignGen("+", VarGen::create(x), ci(5))->nextValue()->smallInt(), 15);
  EXPECT_EQ(x->get().smallInt(), 15);
  EXPECT_EQ(makeAugAssignGen("*", VarGen::create(x), ci(2))->nextValue()->smallInt(), 30);
}

TEST(AugAssignTest, ComparisonAugmentedCanFail) {
  auto x = CellVar::create(Value::integer(10));
  EXPECT_FALSE(makeAugAssignGen("<", VarGen::create(x), ci(5))->nextValue().has_value());
  EXPECT_EQ(x->get().smallInt(), 10) << "failed <:= does not assign";
  EXPECT_TRUE(makeAugAssignGen("<", VarGen::create(x), ci(99))->nextValue().has_value());
  EXPECT_EQ(x->get().smallInt(), 99) << "successful <:= assigns the right operand";
}

TEST(SwapTest, ExchangesValues) {
  auto x = CellVar::create(Value::integer(1));
  auto y = CellVar::create(Value::integer(2));
  ASSERT_TRUE(makeSwapGen(VarGen::create(x), VarGen::create(y))->nextValue().has_value());
  EXPECT_EQ(x->get().smallInt(), 2);
  EXPECT_EQ(y->get().smallInt(), 1);
}

TEST(IndexTest, ListSubscriptFailsOutOfRange) {
  const Value l = test::listOf({10, 20});
  EXPECT_EQ(makeIndexGen(ConstGen::create(l), ci(1))->nextValue()->smallInt(), 10);
  EXPECT_EQ(makeIndexGen(ConstGen::create(l), ci(-1))->nextValue()->smallInt(), 20);
  EXPECT_FALSE(makeIndexGen(ConstGen::create(l), ci(3))->nextValue().has_value())
      << "out-of-range subscript fails, it does not error";
}

TEST(IndexTest, SubscriptAssignment) {
  const Value l = test::listOf({10, 20});
  auto r = makeIndexGen(ConstGen::create(l), ci(2))->next();
  ASSERT_TRUE(r && r->ref);
  r->ref->set(Value::integer(99));
  EXPECT_EQ(l.list()->at(2)->smallInt(), 99);
}

TEST(IndexTest, TableAndStringSubscript) {
  auto t = TableImpl::create(Value::integer(0));
  t->insert(Value::string("k"), Value::integer(7));
  EXPECT_EQ(makeIndexGen(ConstGen::create(Value::table(t)),
                         ConstGen::create(Value::string("k")))->nextValue()->smallInt(),
            7);
  EXPECT_EQ(makeIndexGen(ConstGen::create(Value::string("hello")), ci(2))
                ->nextValue()->str(),
            "e");
  EXPECT_FALSE(makeIndexGen(ConstGen::create(Value::string("hi")), ci(9))->nextValue());
  EXPECT_THROW(makeIndexGen(ci(1), ci(1))->nextValue(), IconError);
}

TEST(FieldTest, TableFieldSugar) {
  auto t = TableImpl::create();
  t->insert(Value::string("name"), Value::string("icon"));
  auto g = makeFieldGen(ConstGen::create(Value::table(t)), "name");
  auto r = g->next();
  ASSERT_TRUE(r && r->ref);
  EXPECT_EQ(r->value.str(), "icon");
  r->ref->set(Value::string("unicon"));
  EXPECT_EQ(t->lookup(Value::string("name")).str(), "unicon");
}

TEST(ListLitTest, CrossProductSemantics) {
  // [1|2, 5] generates two lists.
  std::vector<GenPtr> elems;
  elems.push_back(AltGen::create(ci(1), ci(2)));
  elems.push_back(ci(5));
  auto g = makeListLitGen(std::move(elems));
  auto first = g->nextValue();
  ASSERT_TRUE(first && first->isList());
  EXPECT_EQ(first->list()->at(1)->smallInt(), 1);
  auto second = g->nextValue();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->list()->at(1)->smallInt(), 2);
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(ListLitTest, EmptyLiteral) {
  auto g = makeListLitGen({});
  auto v = g->nextValue();
  ASSERT_TRUE(v && v->isList());
  EXPECT_EQ(v->list()->size(), 0);
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(OpsRegistry, UnknownOperatorThrows) {
  EXPECT_THROW(makeBinaryOpGen("@@", ci(1), ci(2)), std::invalid_argument);
  EXPECT_THROW(makeUnaryOpGen("#", ci(1)), std::invalid_argument);
}

}  // namespace
}  // namespace congen

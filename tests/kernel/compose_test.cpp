// compose_test.cpp — structural composition: product backtracking,
// alternation, sequences, bound iteration, limits, promotion.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "builtins/builtins.hpp"
#include "kernel/coexpression.hpp"
#include "runtime/error.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;
using test::range;
using test::strs;
using test::vals;

TEST(ProductTest, ResultsAreRightOperands) {
  // e & e' yields e' once per left result: 2 lefts x 3 rights = 6.
  auto g = ProductGen::create(range(1, 2), range(10, 12));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{10, 11, 12, 10, 11, 12}));
}

TEST(ProductTest, FailingLeftShortCircuits) {
  bool rightRan = false;
  auto right = CallbackGen::create([&rightRan]() -> CallbackGen::Puller {
    return [&rightRan]() -> std::optional<Value> {
      rightRan = true;
      return std::nullopt;
    };
  });
  auto g = ProductGen::create(FailGen::create(), std::move(right));
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_FALSE(rightRan) << "conditional evaluation: right never evaluated (Section II)";
}

TEST(ProductTest, BacktrackingRestartsRight) {
  // The right operand must restart for each left result, and the bound
  // iteration on the left is visible to the right (dependent product).
  auto i = CellVar::create();
  auto g = ProductGen::create(InGen::create(i, range(1, 3)),
                              makeBinaryOpGen("*", VarGen::create(i), ci(10)));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(ProductTest, PaperSectionIIExample) {
  // i=(1 to 2) & j=(4 to 7) & isprime(j) & i*j  produces 5 7 10 14.
  auto i = CellVar::create();
  auto j = CellVar::create();
  auto isprime = builtins::lookup("isprime");
  auto g = ProductGen::create(
      InGen::create(i, range(1, 2)),
      ProductGen::create(
          InGen::create(j, range(4, 7)),
          ProductGen::create(
              makeInvokeGen(ConstGen::create(Value::proc(isprime)), {VarGen::create(j)}),
              makeBinaryOpGen("*", VarGen::create(i), VarGen::create(j)))));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{5, 7, 10, 14}));
}

TEST(AltTest, ConcatenatesResultSequences) {
  auto g = AltGen::create(range(1, 2), range(8, 9));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 8, 9}));
}

TEST(AltTest, EmptyBranchesSkipped) {
  std::vector<GenPtr> children;
  children.push_back(FailGen::create());
  children.push_back(ci(5));
  children.push_back(FailGen::create());
  children.push_back(ci(6));
  EXPECT_EQ(ints(AltGen::create(std::move(children))), (std::vector<std::int64_t>{5, 6}));
}

TEST(SeqTest, ExpressionModeBoundsAllButLast) {
  // (a; b; c): a and b are bounded to one result, c delegates fully.
  std::vector<GenPtr> terms;
  terms.push_back(range(1, 5));   // bounded: contributes nothing
  terms.push_back(range(10, 15)); // bounded
  terms.push_back(range(100, 102));
  auto g = SeqGen::create(std::move(terms), SeqGen::Mode::Expression);
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{100, 101, 102}));
}

TEST(SeqTest, BodyModeSwallowsPlainResults) {
  std::vector<GenPtr> terms;
  terms.push_back(ci(1));
  terms.push_back(ci(2));
  auto g = SeqGen::create(std::move(terms), SeqGen::Mode::Body);
  EXPECT_FALSE(g->nextValue().has_value()) << "bodies produce only via suspend/return";
}

TEST(SeqTest, FailedBoundedTermDoesNotAbortSequence) {
  std::vector<GenPtr> terms;
  terms.push_back(FailGen::create());
  terms.push_back(ci(9));
  auto g = SeqGen::create(std::move(terms), SeqGen::Mode::Expression);
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{9}));
}

TEST(InGenTest, BindsAndYieldsVariable) {
  auto x = CellVar::create();
  auto g = InGen::create(x, range(5, 7));
  auto r = g->next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value.smallInt(), 5);
  EXPECT_EQ(x->get().smallInt(), 5);
  EXPECT_EQ(r->ref, x) << "(x in e) yields the variable itself";
  g->next();
  EXPECT_EQ(x->get().smallInt(), 6);
}

TEST(LimitTest, CapsResultsPerCycle) {
  EXPECT_EQ(ints(LimitGen::create(range(1, 100), 3)), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(ints(LimitGen::create(range(1, 2), 5)), (std::vector<std::int64_t>{1, 2}))
      << "limit above length is harmless";
  EXPECT_EQ(ints(LimitGen::create(range(1, 5), 0)), (std::vector<std::int64_t>{}));
}

TEST(LimitTest, BoundIsAnExpression) {
  // e \ n re-evaluates n each cycle.
  auto n = CellVar::create(Value::integer(2));
  auto g = LimitGen::create(range(1, 10), VarGen::create(n));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2}));
  n->set(Value::integer(4));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 3, 4}));
}

TEST(NotTest, InvertsSuccess) {
  EXPECT_TRUE(NotGen::create(FailGen::create())->nextValue()->isNull());
  EXPECT_FALSE(NotGen::create(ci(1))->nextValue().has_value());
  // not e is bounded: one result max.
  auto g = NotGen::create(FailGen::create());
  EXPECT_TRUE(g->nextValue().has_value());
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(RepeatAltTest, CyclesUntilSterile) {
  auto g = RepeatAltGen::create(range(1, 2));
  std::vector<std::int64_t> first6;
  for (int i = 0; i < 6; ++i) first6.push_back(g->nextValue()->requireInt64());
  EXPECT_EQ(first6, (std::vector<std::int64_t>{1, 2, 1, 2, 1, 2})) << "|e repeats its operand";
}

TEST(RepeatAltTest, SterilePassTerminates) {
  EXPECT_FALSE(RepeatAltGen::create(FailGen::create())->nextValue().has_value())
      << "|&fail must not loop forever";
}

TEST(PromoteTest, ListElementsAreAssignable) {
  const Value l = test::listOf({1, 2, 3});
  auto g = PromoteGen::create(ConstGen::create(l));
  auto r = g->next();
  ASSERT_TRUE(r.has_value());
  ASSERT_NE(r->ref, nullptr);
  r->ref->set(Value::integer(42));
  EXPECT_EQ(l.list()->at(1)->smallInt(), 42) << "!L yields trapped variables";
  EXPECT_EQ(g->nextValue()->smallInt(), 2);
}

TEST(PromoteTest, StringsTablesSets) {
  EXPECT_EQ(strs(PromoteGen::create(ConstGen::create(Value::string("abc")))),
            (std::vector<std::string>{"a", "b", "c"}));

  auto t = TableImpl::create();
  t->insert(Value::string("x"), Value::integer(1));
  t->insert(Value::string("y"), Value::integer(2));
  EXPECT_EQ(ints(PromoteGen::create(ConstGen::create(Value::table(t)))),
            (std::vector<std::int64_t>{1, 2})) << "table values in sorted key order";

  auto s = SetImpl::create();
  s->insert(Value::integer(3));
  s->insert(Value::integer(1));
  EXPECT_EQ(ints(PromoteGen::create(ConstGen::create(Value::set(s)))),
            (std::vector<std::int64_t>{1, 3})) << "set members sorted";
}

TEST(PromoteTest, GrowingListObserved) {
  // !L walks by index, so elements appended during iteration are seen —
  // needed for chunk() (Fig. 4), which fills its list while another
  // expression drains it.
  auto l = ListImpl::create({Value::integer(1)});
  auto g = PromoteGen::create(ConstGen::create(Value::list(l)));
  EXPECT_EQ(g->nextValue()->smallInt(), 1);
  l->put(Value::integer(2));
  EXPECT_EQ(g->nextValue()->smallInt(), 2);
}

TEST(PromoteTest, ErrorsOnNonPromotable) {
  auto g = PromoteGen::create(ci(5));
  EXPECT_THROW(g->nextValue(), IconError);
  EXPECT_THROW(PromoteGen::create(NullGen::create())->nextValue(), IconError);
}

TEST(PromoteTest, FlattensOperandSequence) {
  // ! over an operand generating two lists concatenates their elements.
  std::vector<Value> lists = {test::listOf({1, 2}), test::listOf({3})};
  auto g = PromoteGen::create(ValuesGen::create(lists));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace congen

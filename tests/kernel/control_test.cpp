// control_test.cpp — if/every/while/until/repeat, suspend/return/fail
// propagation, break/next, body roots and the method-body cache.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "runtime/proc.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;
using test::range;

// Convenience: a procedure-style body over statements.
GenPtr body(std::vector<GenPtr> stmts) {
  return BodyRootGen::create(SeqGen::create(std::move(stmts), SeqGen::Mode::Body));
}

TEST(IfTest, GeneratesChosenBranchFully) {
  // if cond then (1 to 3): the branch delegates full iteration.
  EXPECT_EQ(ints(IfGen::create(ci(1), range(1, 3))), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(ints(IfGen::create(FailGen::create(), range(1, 3), range(7, 8))),
            (std::vector<std::int64_t>{7, 8}));
  EXPECT_EQ(ints(IfGen::create(FailGen::create(), range(1, 3))), (std::vector<std::int64_t>{}))
      << "failing condition with no else fails";
}

TEST(IfTest, ConditionIsBounded) {
  // The condition is evaluated once per cycle, not resumed.
  int evals = 0;
  auto cond = CallbackGen::create([&evals]() -> CallbackGen::Puller {
    return [&evals]() -> std::optional<Value> {
      ++evals;
      return Value::integer(1);
    };
  });
  auto g = IfGen::create(std::move(cond), range(1, 3));
  EXPECT_EQ(ints(g).size(), 3u);
  EXPECT_EQ(evals, 1);
}

TEST(EveryTest, DrivesControlToExhaustionAndFails) {
  auto x = CellVar::create();
  std::vector<std::int64_t> seen;
  auto probe = CallbackGen::create([&]() -> CallbackGen::Puller {
    return [&]() -> std::optional<Value> {
      seen.push_back(x->get().smallInt());
      return std::nullopt;  // body statement fails; loop continues
    };
  });
  auto g = LoopGen::every(InGen::create(x, range(1, 4)), std::move(probe));
  EXPECT_FALSE(g->nextValue().has_value()) << "every itself fails";
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1, 2, 3, 4}));
}

TEST(EveryTest, SuspendInBodyMakesLoopAGenerator) {
  // every x := 1 to 3 do suspend x*10 — inside a body root.
  auto x = CellVar::create();
  auto g = body({LoopGen::every(
      InGen::create(x, range(1, 3)),
      SuspendGen::create(makeBinaryOpGen("*", VarGen::create(x), ci(10))))});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(EveryTest, BodyIsBounded) {
  // The loop body is a bounded expression: one result per iteration.
  auto x = CellVar::create();
  int bodyRuns = 0;
  auto counting = CallbackGen::create([&]() -> CallbackGen::Puller {
    return [&]() -> std::optional<Value> {
      ++bodyRuns;
      return Value::integer(0);  // infinite singleton supply
    };
  });
  auto g = LoopGen::every(InGen::create(x, range(1, 5)), std::move(counting));
  g->nextValue();
  EXPECT_EQ(bodyRuns, 5) << "exactly one body evaluation per control result";
}

TEST(WhileTest, ReevaluatesConditionEachIteration) {
  auto n = CellVar::create(Value::integer(0));
  // while n < 3 do n +:= 1
  auto g = LoopGen::whileDo(makeBinaryOpGen("<", VarGen::create(n), ci(3)),
                            makeAugAssignGen("+", VarGen::create(n), ci(1)));
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_EQ(n->get().smallInt(), 3);
}

TEST(UntilTest, RunsUntilConditionSucceeds) {
  auto n = CellVar::create(Value::integer(0));
  auto g = LoopGen::untilDo(makeBinaryOpGen(">=", VarGen::create(n), ci(4)),
                            makeAugAssignGen("+", VarGen::create(n), ci(1)));
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_EQ(n->get().smallInt(), 4);
}

TEST(RepeatTest, TerminatedByBreak) {
  auto n = CellVar::create(Value::integer(0));
  // repeat { n +:= 1; if n >= 5 then break; }
  auto g = LoopGen::repeat(SeqGen::create(
      [&] {
        std::vector<GenPtr> stmts;
        stmts.push_back(makeAugAssignGen("+", VarGen::create(n), ci(1)));
        stmts.push_back(IfGen::create(makeBinaryOpGen(">=", VarGen::create(n), ci(5)),
                                      BreakGen::create()));
        return stmts;
      }(),
      SeqGen::Mode::Body));
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_EQ(n->get().smallInt(), 5);
}

TEST(NextTest, SkipsRestOfBody) {
  auto x = CellVar::create();
  auto touched = CellVar::create(Value::integer(0));
  // every x := 1 to 5 do { if x < 3 then next; touched +:= 1 }
  auto g = LoopGen::every(
      InGen::create(x, range(1, 5)),
      SeqGen::create(
          [&] {
            std::vector<GenPtr> stmts;
            stmts.push_back(IfGen::create(makeBinaryOpGen("<", VarGen::create(x), ci(3)),
                                          NextGen::create()));
            stmts.push_back(makeAugAssignGen("+", VarGen::create(touched), ci(1)));
            return stmts;
          }(),
          SeqGen::Mode::Body));
  g->nextValue();
  EXPECT_EQ(touched->get().smallInt(), 3) << "only x = 3,4,5 reach the second statement";
}

TEST(BodyRootTest, SuspendYieldsPlainResults) {
  auto g = body({SuspendGen::create(range(1, 3))});
  auto r = g->next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->flags, Result::kNone) << "the root strips suspend flags";
  EXPECT_EQ(r->value.smallInt(), 1);
}

TEST(BodyRootTest, ReturnTerminatesBody) {
  // { suspend 1 to 2; return 99; suspend 100; }
  auto g = body({SuspendGen::create(range(1, 2)), ReturnGen::create(ci(99)),
                 SuspendGen::create(ci(100))});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1, 2, 99}));
}

TEST(BodyRootTest, ReturnOfFailingExpressionFailsProcedure) {
  auto g = body({ReturnGen::create(FailGen::create())});
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(BodyRootTest, FailStatementTerminatesWithFailure) {
  auto g = body({SuspendGen::create(ci(1)), FailBodyGen::create(), SuspendGen::create(ci(2))});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{1}));
}

TEST(BodyRootTest, FallingOffTheEndFails) {
  auto g = body({ci(42)});  // expression statement: value discarded
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(BodyRootTest, SuspendInsideNestedLoopsPropagates) {
  // every i := 1 to 2 do every j := 1 to 2 do suspend i*10+j
  auto i = CellVar::create();
  auto j = CellVar::create();
  auto inner = LoopGen::every(
      InGen::create(j, range(1, 2)),
      SuspendGen::create(makeBinaryOpGen(
          "+", makeBinaryOpGen("*", VarGen::create(i), ci(10)), VarGen::create(j))));
  auto g = body({LoopGen::every(InGen::create(i, range(1, 2)), std::move(inner))});
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{11, 12, 21, 22}));
}

TEST(MethodBodyCacheTest, ParkAndReuse) {
  MethodBodyCache cache;
  EXPECT_EQ(cache.getFree("m"), nullptr);

  auto x = CellVar::create();
  auto root = BodyRootGen::create(SeqGen::create(
      [&] {
        std::vector<GenPtr> stmts;
        stmts.push_back(SuspendGen::create(VarGen::create(x)));
        return stmts;
      }(),
      SeqGen::Mode::Body));
  root->setUnpackClosure([x](const std::vector<Value>& args) {
    x->set(args.empty() ? Value::null() : args[0]);
  });
  root->setCache(&cache, "m");
  root->unpackArgs({Value::integer(7)});

  Gen* rootRaw = root.get();
  EXPECT_EQ(ints(root), (std::vector<std::int64_t>{7}));
  // On completion the body parked itself. A parked body is only handed
  // back out once its previous call site has released it (a still-held
  // body could be resumed there), so drop our reference first.
  EXPECT_EQ(cache.getFree("m"), nullptr) << "aliased body must not be handed out";
  EXPECT_EQ(cache.size("m"), 1u) << "still parked after the refused take";
  root.reset();
  auto reused = cache.getFree("m");
  ASSERT_NE(reused, nullptr);
  EXPECT_EQ(reused.get(), rootRaw);
  static_cast<BodyRootGen&>(*reused).unpackArgs({Value::integer(8)});
  EXPECT_EQ(ints(reused), (std::vector<std::int64_t>{8})) << "reused body with rebound args";
  EXPECT_EQ(cache.size("m"), 1u) << "parked again after the second run";
}

TEST(MethodBodyCacheTest, RecursionGetsDistinctBodies) {
  MethodBodyCache cache;
  cache.putFree("m", ci(1));
  auto a = cache.getFree("m");
  auto b = cache.getFree("m");
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(b, nullptr) << "a body in use is not handed out twice";
}

}  // namespace
}  // namespace congen

// case_slice_test.cpp — kernel-level tests for CaseGen, slices, records
// and the null-test operators.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "interp/interpreter.hpp"
#include "runtime/error.hpp"
#include "runtime/record.hpp"
#include "runtime/var.hpp"

namespace congen {
namespace {

using test::ci;
using test::ints;
using test::range;

TEST(CaseGenTest, FirstMatchWins) {
  std::vector<CaseGen::Branch> branches;
  branches.push_back({ci(1), ci(10)});
  branches.push_back({ci(1), ci(20)});  // shadowed by the first
  auto g = CaseGen::create(ci(1), std::move(branches));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{10}));
}

TEST(CaseGenTest, BranchValueGenerators) {
  // A branch value that generates several alternatives matches any.
  std::vector<CaseGen::Branch> branches;
  branches.push_back({range(5, 9), ConstGen::create(Value::string("mid"))});
  branches.push_back({nullptr, ConstGen::create(Value::string("other"))});
  auto g = CaseGen::create(ci(7), std::move(branches));
  EXPECT_EQ(g->nextValue()->str(), "mid");
}

TEST(CaseGenTest, DefaultAndFailure) {
  std::vector<CaseGen::Branch> b1;
  b1.push_back({ci(1), ci(10)});
  b1.push_back({nullptr, ci(99)});
  EXPECT_EQ(ints(CaseGen::create(ci(2), std::move(b1))), (std::vector<std::int64_t>{99}));

  std::vector<CaseGen::Branch> b2;
  b2.push_back({ci(1), ci(10)});
  EXPECT_TRUE(ints(CaseGen::create(ci(2), std::move(b2))).empty()) << "no match, no default";

  std::vector<CaseGen::Branch> b3;
  b3.push_back({ci(1), ci(10)});
  EXPECT_TRUE(ints(CaseGen::create(FailGen::create(), std::move(b3))).empty())
      << "failing control fails the case";
}

TEST(CaseGenTest, SelectedBranchDelegates) {
  std::vector<CaseGen::Branch> branches;
  branches.push_back({ci(1), range(7, 9)});
  auto g = CaseGen::create(ci(1), std::move(branches));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{7, 8, 9}));
  EXPECT_EQ(ints(g), (std::vector<std::int64_t>{7, 8, 9})) << "restart re-decides";
}

TEST(SliceGenTest, StringsAndLists) {
  auto s = ConstGen::create(Value::string("generators"));
  EXPECT_EQ(makeSliceGen(std::move(s), ci(1), ci(4))->nextValue()->str(), "gen");
  const Value l = test::listOf({1, 2, 3, 4});
  auto g = makeSliceGen(ConstGen::create(l), ci(2), ci(4));
  EXPECT_EQ(g->nextValue()->image(), "[2,3]");
  EXPECT_FALSE(makeSliceGen(ConstGen::create(l), ci(1), ci(99))->nextValue().has_value());
  EXPECT_THROW(makeSliceGen(ci(5), ci(1), ci(2))->nextValue(), IconError);
}

TEST(SliceGenTest, GeneratorBounds) {
  // s[(1|2):4] generates both slices — slices sit in the operand product.
  auto g = makeSliceGen(ConstGen::create(Value::string("abcd")),
                        AltGen::create(ci(1), ci(2)), ci(4));
  EXPECT_EQ(g->nextValue()->str(), "abc");
  EXPECT_EQ(g->nextValue()->str(), "bc");
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(NullTestOps, KernelLevel) {
  auto x = CellVar::create(Value::integer(5));
  auto nonNull = makeUnaryOpGen("\\", VarGen::create(x));
  auto r = nonNull->next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value.smallInt(), 5);
  ASSERT_NE(r->ref, nullptr) << "\\x preserves the variable for assignment";

  auto isNull = makeUnaryOpGen("/", VarGen::create(x));
  EXPECT_FALSE(isNull->nextValue().has_value());
  x->set(Value::null());
  auto r2 = makeUnaryOpGen("/", VarGen::create(x))->next();
  ASSERT_TRUE(r2.has_value());
  ASSERT_NE(r2->ref, nullptr);
  r2->ref->set(Value::integer(1));  // the /x := default idiom
  EXPECT_EQ(x->get().smallInt(), 1);
}

TEST(RecordKernel, TypeAndInstance) {
  auto type = RecordType::create("point", {"x", "y"});
  EXPECT_EQ(type->arity(), 2u);
  EXPECT_EQ(type->fieldIndex("y"), 1u);
  EXPECT_FALSE(type->fieldIndex("z").has_value());

  auto rec = RecordImpl::create(type, {Value::integer(3)});
  EXPECT_EQ(rec->field("x")->smallInt(), 3);
  EXPECT_TRUE(rec->field("y")->isNull()) << "missing constructor args are null";
  EXPECT_TRUE(rec->assignField("y", Value::integer(9)));
  EXPECT_EQ(rec->at(2)->smallInt(), 9);
  EXPECT_EQ(rec->at(-1)->smallInt(), 9);
  EXPECT_FALSE(rec->assign(3, Value::null()));
}

TEST(RecordKernel, FieldGenTrappedVariable) {
  auto type = RecordType::create("point", {"x", "y"});
  const Value p = Value::record(RecordImpl::create(type, {Value::integer(1), Value::integer(2)}));
  auto g = makeFieldGen(ConstGen::create(p), "x");
  auto r = g->next();
  ASSERT_TRUE(r && r->ref);
  r->ref->set(Value::integer(42));
  EXPECT_EQ(p.record()->field("x")->smallInt(), 42);
  EXPECT_THROW(makeFieldGen(ConstGen::create(p), "nope")->nextValue(), IconError);
}

TEST(RecordKernel, ValueIntegration) {
  auto type = RecordType::create("pair", {"a", "b"});
  const Value p = Value::record(RecordImpl::create(type, {Value::integer(1), Value::integer(2)}));
  EXPECT_EQ(p.typeName(), "pair");
  EXPECT_EQ(p.image(), "record pair(1,2)");
  EXPECT_EQ(p.size(), 2);
  EXPECT_TRUE(p.equals(p));
  const Value q = Value::record(RecordImpl::create(type, {Value::integer(1), Value::integer(2)}));
  EXPECT_FALSE(p.equals(q)) << "records compare by identity";
  EXPECT_EQ(ints(PromoteGen::create(ConstGen::create(p))), (std::vector<std::int64_t>{1, 2}));
}

TEST(RevAssignTest, UndoneOnBacktracking) {
  auto x = CellVar::create(Value::integer(1));
  // (x <- (5|6)) & x > 5 — the first alternative fails the test, is
  // undone, and the second succeeds.
  auto g = ProductGen::create(
      makeRevAssignGen(VarGen::create(x), AltGen::create(ci(5), ci(6))),
      makeBinaryOpGen(">", VarGen::create(x), ci(5)));
  ASSERT_TRUE(g->nextValue().has_value());
  EXPECT_EQ(x->get().smallInt(), 6);
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_EQ(x->get().smallInt(), 1) << "fully exhausted: the original value is restored";
}

TEST(RevAssignTest, SurvivingAssignmentPersists) {
  auto x = CellVar::create(Value::integer(1));
  auto g = makeRevAssignGen(VarGen::create(x), ci(9));
  ASSERT_TRUE(g->nextValue().has_value());
  EXPECT_EQ(x->get().smallInt(), 9) << "no backtracking: the assignment stands";
}

TEST(RevAssignTest, RestartRestores) {
  auto x = CellVar::create(Value::integer(1));
  auto g = makeRevAssignGen(VarGen::create(x), ci(9));
  g->nextValue();
  g->restart();
  EXPECT_EQ(x->get().smallInt(), 1);
}

TEST(RevSwapTest, ExchangeAndUndo) {
  auto a = CellVar::create(Value::integer(1));
  auto b = CellVar::create(Value::integer(2));
  auto g = makeRevSwapGen(VarGen::create(a), VarGen::create(b));
  ASSERT_TRUE(g->nextValue().has_value());
  EXPECT_EQ(a->get().smallInt(), 2);
  EXPECT_EQ(b->get().smallInt(), 1);
  EXPECT_FALSE(g->nextValue().has_value()) << "resumption undoes";
  EXPECT_EQ(a->get().smallInt(), 1);
  EXPECT_EQ(b->get().smallInt(), 2);
}

TEST(RevAssignTest, LanguageLevel) {
  interp::Interpreter interp;
  interp.evalOne("x := 1");
  std::vector<std::int64_t> got;
  for (const auto& v : interp.evalAll("((x <- (5|6)) & x > 5 & x) | x")) {
    got.push_back(v.smallInt());
  }
  EXPECT_EQ(got, (std::vector<std::int64_t>{6, 1}));
  // After full exhaustion the binding is restored.
  EXPECT_EQ(interp.evalOne("x")->smallInt(), 1);
  interp.evalOne("a := 10");
  interp.evalOne("b := 20");
  EXPECT_EQ(interp.evalAll("(a <-> b) & a == 20 & b == 10").size(), 1u);
}

}  // namespace
}  // namespace congen

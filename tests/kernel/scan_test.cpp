// scan_test.cpp — string scanning: the `?` operator, the reversible
// matching functions (tab/move), &subject/&pos, and the analysis
// builtins' defaulting to the scanning environment.
#include "kernel/scan.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "interp/interpreter.hpp"
#include "runtime/error.hpp"

namespace congen {
namespace {

using test::ci;

GenPtr cs(const std::string& s) { return ConstGen::create(Value::string(s)); }

TEST(ScanEnvTest, DefaultEnvironmentIsEmptySubject) {
  EXPECT_EQ(ScanEnv::current().subject.str(), "");
  EXPECT_EQ(ScanEnv::current().pos, 1);
  EXPECT_EQ(ScanEnv::depth(), 0u);
}

TEST(ScanEnvTest, ResolvePositionConvention) {
  ScanEnv::State s;
  s.subject = Value::string("abcd");
  ScanEnv::push(s);
  EXPECT_EQ(ScanEnv::resolvePos(1), 1);
  EXPECT_EQ(ScanEnv::resolvePos(5), 5) << "n+1 is valid (past the end)";
  EXPECT_EQ(ScanEnv::resolvePos(0), 5) << "0 means the end";
  EXPECT_EQ(ScanEnv::resolvePos(-1), 4);
  EXPECT_FALSE(ScanEnv::resolvePos(6).has_value());
  EXPECT_FALSE(ScanEnv::resolvePos(-5).has_value());
  ScanEnv::pop();
}

TEST(ScanGenTest, EstablishesAndRestoresEnvironment) {
  // "abc" ? &subject — the body sees the subject; afterwards the outer
  // environment is back.
  auto g = ScanGen::create(cs("abc"), makeSubjectVarGen());
  EXPECT_EQ(g->nextValue()->str(), "abc");
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_EQ(ScanEnv::depth(), 0u) << "environment popped after the scan";
}

TEST(ScanGenTest, TabProducesSpannedSubstring) {
  // "hello" ? tab(3) → "he", leaving &pos at 3.
  auto g = ScanGen::create(cs("hello"), makeTabGen(ci(3)));
  EXPECT_EQ(g->nextValue()->str(), "he");
}

TEST(ScanGenTest, TabIsReversibleOnBacktracking) {
  // "abcd" ? (tab(2 | 3)): first alternative yields "a"; forcing the
  // next result must UNDO the first tab before trying tab(3) → "ab".
  auto g = ScanGen::create(cs("abcd"), makeTabGen(AltGen::create(ci(2), ci(3))));
  EXPECT_EQ(g->nextValue()->str(), "a");
  EXPECT_EQ(g->nextValue()->str(), "ab") << "second alternative starts from the restored pos";
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(ScanGenTest, MoveIsRelative) {
  // "hello" ? (tab(3) || move(2)) — "he" then "ll".
  auto g = ScanGen::create(
      cs("hello"), makeBinaryOpGen("||", makeTabGen(ci(3)), makeMoveGen(ci(2))));
  EXPECT_EQ(g->nextValue()->str(), "hell");
}

TEST(ScanGenTest, OutOfRangeTabFails) {
  auto g = ScanGen::create(cs("ab"), makeTabGen(ci(99)));
  EXPECT_FALSE(g->nextValue().has_value());
  EXPECT_EQ(ScanEnv::depth(), 0u);
}

TEST(ScanGenTest, MultipleSubjects) {
  // ("ab" | "xyz") ? tab(0) — scans each subject in turn.
  auto g = ScanGen::create(AltGen::create(cs("ab"), cs("xyz")), makeTabGen(ci(0)));
  EXPECT_EQ(g->nextValue()->str(), "ab");
  EXPECT_EQ(g->nextValue()->str(), "xyz");
  EXPECT_FALSE(g->nextValue().has_value());
}

TEST(ScanGenTest, NestedScans) {
  // "ab" ? ("cd" ? &subject || move(1)) — inner scan sees "cd"; after it
  // completes, the outer environment ("ab", pos 1) is current again.
  auto inner = ScanGen::create(cs("cd"), makeSubjectVarGen());
  auto g = ScanGen::create(cs("ab"),
                           makeBinaryOpGen("||", std::move(inner), makeMoveGen(ci(1))));
  EXPECT_EQ(g->nextValue()->str(), "cda");
  EXPECT_EQ(ScanEnv::depth(), 0u);
}

// --- language level ----------------------------------------------------

std::vector<std::string> evalStrs(interp::Interpreter& interp, const std::string& src) {
  std::vector<std::string> out;
  for (const auto& v : interp.evalAll(src)) out.push_back(v.toDisplayString());
  return out;
}

TEST(ScanLang, BasicMatchExpressions) {
  interp::Interpreter interp;
  EXPECT_EQ(interp.evalOne("\"hello world\" ? tab(6)")->str(), "hello");
  EXPECT_EQ(interp.evalOne("\"hello\" ? (tab(3) || tab(0))")->str(), "hello");
  EXPECT_EQ(interp.evalOne("\"banana\" ? tab(find(\"nan\"))")->str(), "ba")
      << "find defaults to &subject";
  EXPECT_TRUE(interp.evalAll("\"abc\" ? tab(find(\"zz\"))").empty());
}

TEST(ScanLang, SubjectAndPosKeywords) {
  interp::Interpreter interp;
  EXPECT_EQ(interp.evalOne("\"abc\" ? &subject")->str(), "abc");
  EXPECT_EQ(interp.evalOne("\"abc\" ? (tab(2) & &pos)")->smallInt(), 2);
  EXPECT_EQ(interp.evalOne("\"abcdef\" ? (&pos := 3 & tab(5))")->str(), "cd")
      << "&pos is assignable";
  EXPECT_EQ(interp.evalOne("&subject")->str(), "") << "outside a scan: empty default";
}

TEST(ScanLang, ClassicSplitIdiom) {
  interp::Interpreter interp;
  interp.load(R"(
    def fields(s) {
      local out;
      out := [];
      s ? while not pos(0) do {
        put(out, tab(upto(",") | 0));
        move(1);
      };
      return out;
    }
  )");
  EXPECT_EQ(interp.evalOne("image(fields(\"a,bb,ccc\"))")->str(), "[\"a\",\"bb\",\"ccc\"]");
  EXPECT_EQ(interp.evalOne("image(fields(\"one\"))")->str(), "[\"one\"]");
}

TEST(ScanLang, BacktrackingSearchInsideScan) {
  // Generate every word that is followed by "!": scanning + goal
  // direction working together.
  interp::Interpreter interp;
  interp.load(R"(
    def shouted(s) {
      s ? suspend tab(upto("!")) & (move(1) & "") & 1;
    }
  )");
  EXPECT_EQ(interp.evalAll("\"ab! cd!\" ? 1").size(), 1u);
  EXPECT_EQ(evalStrs(interp, "shouted(\"hi! yo!\")").size(), 2u)
      << "both '!' positions explored by backtracking";
}

TEST(ScanLang, AnalysisDefaultsInsideScan) {
  interp::Interpreter interp;
  EXPECT_EQ(interp.evalOne("\"  lead\" ? (tab(many(\" \")) & tab(0))")->str(), "lead");
  EXPECT_EQ(interp.evalOne("\"banana\" ? (tab(3) & upto(\"a\"))")->smallInt(), 4)
      << "upto starts at &pos";
  EXPECT_EQ(interp.evalOne("\"foo=1\" ? (tab(match(\"foo=\")) & tab(0))")->str(), "1");
}

TEST(ScanLang, ScanResultIsBodysResult) {
  interp::Interpreter interp;
  EXPECT_EQ(interp.evalOne("x := \"abc\" ? 42")->smallInt(), 42);
  EXPECT_TRUE(interp.evalAll("\"abc\" ? &fail").empty());
  EXPECT_EQ(interp.evalOne("42 ? &subject")->str(), "42")
      << "numeric subjects coerce to strings, as in Icon";
  EXPECT_THROW(interp.evalAll("[1] ? 1"), IconError) << "lists are not subjects";
}

TEST(ScanLang, PipesGetFreshScanEnvironment) {
  // Scanning state is thread-local: a pipe body scans independently.
  interp::Interpreter interp;
  EXPECT_EQ(interp.evalOne("! |> (\"xyz\" ? tab(0))")->str(), "xyz");
}

}  // namespace
}  // namespace congen

// normalize_test.cpp — the generator-flattening pass of Section V.A,
// including semantic-equivalence properties (raw vs normalized trees
// produce identical result sequences when interpreted).
#include "transform/normalize.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"

namespace congen::transform {
namespace {

std::string norm(const std::string& src) {
  TempNames names;
  return ast::dump(normalize(frontend::parseExpression(src), names));
}

TEST(IsSimpleTest, Classification) {
  EXPECT_TRUE(isSimple(frontend::parseExpression("x")));
  EXPECT_TRUE(isSimple(frontend::parseExpression("42")));
  EXPECT_TRUE(isSimple(frontend::parseExpression("\"s\"")));
  EXPECT_TRUE(isSimple(frontend::parseExpression("&null")));
  EXPECT_FALSE(isSimple(frontend::parseExpression("f(x)")));
  EXPECT_FALSE(isSimple(frontend::parseExpression("1 to 3")));
  EXPECT_FALSE(isSimple(frontend::parseExpression("a + b")));
}

TEST(NormalizeShape, SimpleOperandsUntouched) {
  EXPECT_EQ(norm("f(x, y)"), "(invoke (id f) (id x) (id y))")
      << "already-simple invocations are preserved (native evaluation)";
  EXPECT_EQ(norm("a[i]"), "(index (id a) (id i))");
  EXPECT_EQ(norm("o.f"), "(field f (id o))");
}

TEST(NormalizeShape, GeneratorArgumentHoisted) {
  // f(1 to 3) → (x_0 in 1 to 3) & f(x_0)
  EXPECT_EQ(norm("f(1 to 3)"),
            "(bin & (in x_0 (toby (int 1) (int 3))) (invoke (id f) (tmp x_0)))");
}

TEST(NormalizeShape, MultipleArgumentsHoistLeftToRight) {
  EXPECT_EQ(norm("f(g(x), 1 to 2)"),
            "(bin & (in x_0 (invoke (id g) (id x))) "
            "(bin & (in x_1 (toby (int 1) (int 2))) "
            "(invoke (id f) (tmp x_0) (tmp x_1))))");
}

TEST(NormalizeShape, PaperPrimaryChain) {
  // The running example of Section V.A: e(ex, ey).c[ei] becomes a chain
  // of bound iterators with only simple operands left in the primary.
  const std::string out = norm("e(ex, ey).c[ei]");
  // The innermost invocation keeps simple operands:
  EXPECT_NE(out.find("(invoke (id e) (id ex) (id ey))"), std::string::npos) << out;
  // Its result is bound and the field selection applies to the binding:
  EXPECT_NE(out.find("(field c (tmp x_0))"), std::string::npos) << out;
  // ...which is itself bound before subscripting:
  EXPECT_NE(out.find("(index (tmp x_1) (id ei))"), std::string::npos) << out;
}

TEST(NormalizeShape, AssignmentKeepsLValueShape) {
  // The LHS must still yield a variable: Index stays, its operands hoist.
  EXPECT_EQ(norm("a[f(i)] := 5"),
            "(bin & (in x_0 (invoke (id f) (id i))) "
            "(assign := (index (id a) (tmp x_0)) (int 5)))");
  EXPECT_EQ(norm("x := f(1 to 2)"),
            "(assign := (id x) (bin & (in x_0 (toby (int 1) (int 2))) "
            "(invoke (id f) (tmp x_0))))");
}

TEST(NormalizeShape, NativeInvokeHoists) {
  EXPECT_EQ(norm("this::h(g(x))"),
            "(bin & (in x_0 (invoke (id g) (id x))) (native h (id this) (tmp x_0)))")
      << "nested primaries hoist recursively; the simple receiver stays in place";
}

TEST(NormalizeShape, TempNamesFollowFig5Convention) {
  TempNames names;
  EXPECT_EQ(names.fresh(), "x_0");
  EXPECT_EQ(names.fresh(), "x_1");
  EXPECT_EQ(names.used(), 2);
}

TEST(NormalizeStatements, RecursesThroughControl) {
  TempNames names;
  const auto prog = normalize(
      frontend::parseProgram("every i := f(1 to 3) do write(i);"), names);
  const std::string out = ast::dump(prog);
  EXPECT_NE(out.find("(in x_0 (toby (int 1) (int 3)))"), std::string::npos) << out;
}

TEST(FreeIdentsTest, CollectsUnboundNames) {
  const auto e = frontend::parseExpression("f(x) + y");
  EXPECT_EQ(freeIdents(e), (std::vector<std::string>{"f", "x", "y"}));
}

TEST(FreeIdentsTest, ExcludesBoundNames) {
  // Declarations and bound iterators bind; parameters bind.
  const auto prog = frontend::parseProgram("def g(a) { local b; suspend a + b + c; }");
  EXPECT_EQ(freeIdents(prog), (std::vector<std::string>{"c"}));

  TempNames names;
  const auto e = normalize(frontend::parseExpression("f(1 to 3)"), names);
  EXPECT_EQ(freeIdents(e), (std::vector<std::string>{"f"})) << "x_0 is bound by its BoundIter";
}

// ---------------------------------------------------------------------
// Semantic equivalence: interpreting the raw tree and the normalized
// tree must produce identical result sequences — normalization is a
// semantics-preserving rewriting (Section V: "semantically equivalent").
// ---------------------------------------------------------------------

class NormalizationEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(NormalizationEquivalence, SameResultSequence) {
  const std::string defs = R"(
    def dbl(x) { return x * 2; }
    def gen(n) { suspend 1 to n; }
    def pick(x) { if x % 2 == 0 then return x; fail; }
  )";

  interp::Interpreter raw(interp::Interpreter::Options{.pipeCapacity = 64, .normalize = false});
  interp::Interpreter normd(interp::Interpreter::Options{.pipeCapacity = 64, .normalize = true});
  raw.load(defs);
  normd.load(defs);

  auto rawValues = raw.evalAll(GetParam());
  auto normValues = normd.evalAll(GetParam());
  ASSERT_EQ(rawValues.size(), normValues.size()) << GetParam();
  for (std::size_t i = 0; i < rawValues.size(); ++i) {
    // Compare by image: structures are equal under === only by identity,
    // but the two interpreters necessarily build distinct lists.
    EXPECT_EQ(rawValues[i].image(), normValues[i].image()) << GetParam() << " result " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, NormalizationEquivalence,
    ::testing::Values(
        "dbl(1 to 5)",
        "dbl(dbl(gen(3)))",
        "gen(2) + gen(2)",
        "pick(1 to 10)",
        "(1 to 2) * pick(4 to 7)",
        "dbl(gen(3)) + 1",
        "[gen(2), 9]",
        "(x := gen(3)) & x * 10",
        "dbl(if 1 < 2 then 5 else 6)",
        "gen(3) \\ 2",
        "-gen(3)",
        "dbl(3 | 1 | 2)",
        "\"abc\"[gen(3)]",
        "pick(gen(10)) > 5"));

}  // namespace
}  // namespace congen::transform

// value_repr_test.cpp — the compact 16-byte Value representation: size
// pin, SSO boundary behaviour, tag transitions across assignment and
// move, refcounted payload sharing across threads (meaningful under the
// tsan / asan-ubsan presets), BigInt demotion invariants, and
// hash/equals agreement inside unordered containers.
#include "runtime/value.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "runtime/collections.hpp"

namespace congen {
namespace {

// The whole point of the representation: two words, pointer-aligned.
static_assert(sizeof(Value) <= 16, "Value must stay two machine words");
static_assert(alignof(Value) == 8, "payload pointer slot must be pointer-aligned");

// -- SSO boundary ------------------------------------------------------

std::string runOf(std::size_t n) { return std::string(n, 'x'); }

TEST(ValueRepr, SsoBoundaryLengths) {
  // kSsoCapacity is the inline payload size: 13 and 14 fit, 15 spills.
  ASSERT_EQ(Value::kSsoCapacity, 14u);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{13},
                              std::size_t{14}, std::size_t{15}, std::size_t{64}}) {
    const std::string s = runOf(n);
    const Value v = Value::string(s);
    ASSERT_TRUE(v.isString());
    EXPECT_EQ(v.str(), s) << "length " << n;
    EXPECT_EQ(v.size(), static_cast<std::int64_t>(n));
  }
}

TEST(ValueRepr, SsoAndHeapStringsCompareAndHashAlike) {
  // Same content must be indistinguishable whichever side of the
  // threshold produced it (e.g. a heap concat result trimmed short).
  const Value inlineV = Value::string("abcdefghijklmn");       // 14: inline
  const Value heapV = Value::stringConcat("abcdefg", "hijklmn");  // built via concat
  ASSERT_EQ(heapV.str().size(), 14u);
  EXPECT_TRUE(inlineV.equals(heapV));
  EXPECT_EQ(inlineV.compare(heapV), 0);
  EXPECT_EQ(inlineV.hash(), heapV.hash());
}

TEST(ValueRepr, ConcatFastPathProducesExactBytes) {
  // Short + short staying under the threshold must stay inline-sized;
  // crossing it must still hold the exact byte sequence.
  EXPECT_EQ(ops::concat(Value::string("ab"), Value::string("cd")).str(), "abcd");
  const Value crossing = ops::concat(Value::string(runOf(10)), Value::string(runOf(10)));
  EXPECT_EQ(crossing.str(), runOf(20));
  // Non-string operands still coerce through the general path.
  EXPECT_EQ(ops::concat(Value::integer(4), Value::string("2")).str(), "42");
}

TEST(ValueRepr, StringViewsRemainValidWhileValueLives) {
  const Value v = Value::string("short");
  const std::string_view sv = v.str();
  const Value copy = v;  // copying must not invalidate the original's view
  EXPECT_EQ(sv, "short");
  EXPECT_EQ(copy.str(), "short");
}

// -- tag transitions through assignment and move -----------------------

TEST(ValueRepr, AssignmentCrossesEveryRepresentationKind) {
  Value v = Value::null();
  EXPECT_EQ(v.tag(), TypeTag::Null);
  v = Value::integer(7);
  EXPECT_EQ(v.tag(), TypeTag::Integer);
  v = Value::real(2.5);
  EXPECT_EQ(v.tag(), TypeTag::Real);
  v = Value::string("inline");
  EXPECT_EQ(v.tag(), TypeTag::String);
  v = Value::string(runOf(40));  // heap string over an SSO string
  EXPECT_EQ(v.str(), runOf(40));
  v = Value::integer(BigInt{2}.pow(100));  // BigInt over heap string
  EXPECT_TRUE(v.isInteger());
  EXPECT_FALSE(v.isSmallInt());
  v = Value::list(ListImpl::create());  // collection over BigInt
  EXPECT_EQ(v.tag(), TypeTag::List);
  v = Value::null();  // release back to the trivial state
  EXPECT_TRUE(v.isNull());
}

TEST(ValueRepr, SelfAssignmentKeepsHeapPayloadAlive) {
  Value v = Value::string(runOf(32));
  v = v;  // NOLINT(clang-diagnostic-self-assign-overloaded)
  EXPECT_EQ(v.str(), runOf(32));
  Value& alias = v;
  v = std::move(alias);
  EXPECT_EQ(v.str(), runOf(32)) << "self-move must not drop the payload";
}

TEST(ValueRepr, MoveLeavesSourceNullAndTransfersOwnership) {
  auto list = ListImpl::create();
  list->push(Value::integer(1));
  Value a = Value::list(list);
  const long before = list.use_count();
  Value b = std::move(a);
  EXPECT_EQ(b.tag(), TypeTag::List);
  EXPECT_TRUE(a.isNull()) << "moved-from Value resets to null";  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(list.use_count(), before) << "move transfers, never bumps";
  a = Value::string("back in use");
  EXPECT_EQ(a.str(), "back in use");
}

TEST(ValueRepr, CopyBumpsAndDestroyReleases) {
  auto table = TableImpl::create();
  const long solo = table.use_count();
  {
    const Value v = Value::table(table);
    EXPECT_EQ(table.use_count(), solo + 1);
    const Value w = v;
    EXPECT_EQ(table.use_count(), solo + 2);
    EXPECT_EQ(w.table().get(), table.get()) << "copies share the payload";
  }
  EXPECT_EQ(table.use_count(), solo) << "both Values released on scope exit";
}

// -- cross-thread payload sharing --------------------------------------

TEST(ValueRepr, RefcountedPayloadsShareAcrossThreads) {
  // Copy heap-backed Values into several threads and drop them there:
  // under -fsanitize=thread this exercises the relaxed-retain /
  // release-decrement protocol; under asan-ubsan it checks the final
  // delete happens exactly once.
  const Value shared = Value::string(runOf(64));
  const Value wide = Value::integer(BigInt{2}.pow(100));
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([shared, wide] {
      for (int i = 0; i < 1000; ++i) {
        const Value copy = shared;
        ASSERT_EQ(copy.str().size(), 64u);
        Value churn = wide;
        churn = copy;  // retain-new-then-release-old across threads
        ASSERT_TRUE(churn.isString());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared.str(), runOf(64));
  EXPECT_TRUE(wide.equals(Value::integer(BigInt{2}.pow(100))));
}

// -- BigInt demotion (small-never-equals-big canonical invariant) ------

TEST(ValueBigIntNorm, ArithmeticResultsFittingInt64Demote) {
  // Overflow promotes to BigInt; the inverse operation must land back
  // on the inline representation, not a one-limb heap BigInt.
  const Value max = Value::integer(std::numeric_limits<std::int64_t>::max());
  const Value over = ops::add(max, Value::integer(1));
  ASSERT_FALSE(over.isSmallInt());
  const Value back = ops::sub(over, Value::integer(1));
  EXPECT_TRUE(back.isSmallInt()) << "re-fitting results must demote";
  EXPECT_EQ(back.smallInt(), std::numeric_limits<std::int64_t>::max());

  const Value min = Value::integer(std::numeric_limits<std::int64_t>::min());
  const Value negOver = ops::negate(min);  // -INT64_MIN overflows
  ASSERT_FALSE(negOver.isSmallInt());
  EXPECT_TRUE(ops::negate(negOver).isSmallInt());

  const Value product = ops::mul(Value::integer(BigInt{2}.pow(80)), Value::integer(0));
  EXPECT_TRUE(product.isSmallInt()) << "big * 0 demotes to inline 0";
  EXPECT_EQ(product.smallInt(), 0);

  const Value quotient = ops::div(Value::integer(BigInt{2}.pow(100)),
                                  Value::integer(BigInt{2}.pow(90)));
  EXPECT_TRUE(quotient.isSmallInt());
  EXPECT_EQ(quotient.smallInt(), 1024);

  const Value remainder = ops::mod(Value::integer(BigInt{2}.pow(100)), Value::integer(1000));
  EXPECT_TRUE(remainder.isSmallInt());
}

TEST(ValueBigIntNorm, FactoryDemotesFittingBigInts) {
  EXPECT_TRUE(Value::integer(BigInt{0}).isSmallInt());
  EXPECT_TRUE(Value::integer(BigInt{std::numeric_limits<std::int64_t>::max()}).isSmallInt());
  EXPECT_TRUE(Value::integer(BigInt{std::numeric_limits<std::int64_t>::min()}).isSmallInt());
  EXPECT_FALSE(Value::integer(BigInt{2}.pow(64)).isSmallInt());
}

TEST(ValueBigIntNorm, EqualsCompareHashAgreeAcrossTheBoundary) {
  // Property: for values straddling the small/big boundary, the three
  // equivalence observers must tell one consistent story.
  std::vector<Value> samples;
  for (const std::int64_t base :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::numeric_limits<std::int64_t>::max(), std::numeric_limits<std::int64_t>::min() + 1}) {
    samples.push_back(Value::integer(base));
    samples.push_back(Value::integer(BigInt{base}));  // demoted twin
  }
  samples.push_back(Value::integer(BigInt{2}.pow(64)));
  samples.push_back(ops::add(Value::integer(std::numeric_limits<std::int64_t>::max()),
                             Value::integer(1)));  // promoted twin of max+1
  samples.push_back(ops::sub(Value::integer(BigInt{2}.pow(64)),
                             ops::sub(Value::integer(BigInt{2}.pow(64)),
                                      Value::integer(5))));  // == 5, via big arithmetic
  for (const Value& a : samples) {
    for (const Value& b : samples) {
      const bool eq = a.equals(b);
      EXPECT_EQ(eq, b.equals(a)) << a.image() << " vs " << b.image();
      EXPECT_EQ(eq, a.compare(b) == 0) << a.image() << " vs " << b.image();
      if (eq) {
        EXPECT_EQ(a.hash(), b.hash()) << a.image() << " vs " << b.image();
      }
    }
  }
}

// -- unordered containers ----------------------------------------------

TEST(ValueRepr, UnorderedContainersTreatEquivalentKeysAsOne) {
  std::unordered_set<Value, ValueHash, ValueEq> set;
  set.insert(Value::integer(5));
  set.insert(ops::sub(Value::integer(BigInt{2}.pow(64)),
                      ops::sub(Value::integer(BigInt{2}.pow(64)), Value::integer(5))));
  set.insert(Value::string("abcdefghijklmn"));
  set.insert(Value::stringConcat("abcdefg", "hijklmn"));
  EXPECT_EQ(set.size(), 2u) << "demoted integers and SSO/heap strings unify";

  std::unordered_map<Value, int, ValueHash, ValueEq> map;
  map[Value::string(runOf(20))] = 1;
  map[ops::concat(Value::string(runOf(10)), Value::string(runOf(10)))] = 2;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(Value::string(runOf(20))), 2);
}

}  // namespace
}  // namespace congen

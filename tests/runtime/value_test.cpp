// value_test.cpp — the dynamic Value type: tags, coercions, arithmetic
// promotion, goal-directed comparisons, equality/ordering/hash.
#include "runtime/value.hpp"

#include <gtest/gtest.h>

#include "runtime/collections.hpp"
#include "runtime/error.hpp"
#include "runtime/proc.hpp"

namespace congen {
namespace {

TEST(ValueTags, Basics) {
  EXPECT_EQ(Value::null().tag(), TypeTag::Null);
  EXPECT_EQ(Value::integer(1).tag(), TypeTag::Integer);
  EXPECT_EQ(Value::integer(BigInt{2}.pow(100)).tag(), TypeTag::Integer);
  EXPECT_EQ(Value::real(1.5).tag(), TypeTag::Real);
  EXPECT_EQ(Value::string("x").tag(), TypeTag::String);
  EXPECT_EQ(Value::list(ListImpl::create()).tag(), TypeTag::List);
  EXPECT_EQ(Value::table(TableImpl::create()).tag(), TypeTag::Table);
  EXPECT_EQ(Value::set(SetImpl::create()).tag(), TypeTag::Set);
}

TEST(ValueTags, SmallIntCanonicalization) {
  // A BigInt that fits 64 bits is demoted to the fast path, so equal
  // integers always share a representation.
  const Value big = Value::integer(BigInt{42});
  EXPECT_TRUE(big.isSmallInt());
  EXPECT_EQ(big.smallInt(), 42);
  const Value wide = Value::integer(BigInt{2}.pow(100));
  EXPECT_TRUE(wide.isInteger());
  EXPECT_FALSE(wide.isSmallInt());
}

TEST(ValueCoercion, NumericFromStrings) {
  EXPECT_EQ(Value::string("42").toNumeric()->smallInt(), 42);
  EXPECT_EQ(Value::string("-17").toNumeric()->smallInt(), -17);
  EXPECT_EQ(Value::string(" 42 ").toNumeric()->smallInt(), 42) << "blanks tolerated";
  EXPECT_DOUBLE_EQ(Value::string("2.5").toNumeric()->real(), 2.5);
  EXPECT_DOUBLE_EQ(Value::string("1e3").toNumeric()->real(), 1000.0);
  EXPECT_EQ(Value::string("16r1f").toNumeric()->smallInt(), 31) << "Icon radix literal";
  EXPECT_EQ(Value::string("2r101").toNumeric()->smallInt(), 5);
  EXPECT_FALSE(Value::string("fish").toNumeric().has_value());
  EXPECT_FALSE(Value::null().toNumeric().has_value());
  EXPECT_FALSE(Value::string("").toNumeric().has_value());
}

TEST(ValueCoercion, IntegerFromReal) {
  EXPECT_EQ(Value::real(3.0).toIntegerValue()->smallInt(), 3);
  EXPECT_FALSE(Value::real(3.5).toIntegerValue().has_value());
  EXPECT_FALSE(Value::real(1.0 / 0.0).toIntegerValue().has_value());
}

TEST(ValueCoercion, RequireHelpers) {
  EXPECT_EQ(Value::string("7").requireInt64(), 7);
  EXPECT_THROW((void)Value::string("x").requireInt64(), IconError);
  EXPECT_DOUBLE_EQ(Value::integer(3).requireReal(), 3.0);
  EXPECT_EQ(Value::integer(42).requireString(), "42") << "numbers convert to strings";
  EXPECT_EQ(Value::null().requireString(), "") << "null converts to empty string";
  EXPECT_THROW(Value::list(ListImpl::create()).requireString(), IconError);
  EXPECT_EQ(Value::integer(BigInt{2}.pow(80)).requireBigInt(), BigInt{2}.pow(80));
}

TEST(ValueArith, IntegerFastPath) {
  EXPECT_EQ(ops::add(Value::integer(2), Value::integer(3)).smallInt(), 5);
  EXPECT_EQ(ops::sub(Value::integer(2), Value::integer(3)).smallInt(), -1);
  EXPECT_EQ(ops::mul(Value::integer(6), Value::integer(7)).smallInt(), 42);
  EXPECT_EQ(ops::div(Value::integer(7), Value::integer(2)).smallInt(), 3);
  EXPECT_EQ(ops::mod(Value::integer(7), Value::integer(2)).smallInt(), 1);
}

TEST(ValueArith, OverflowPromotesToBigInt) {
  const Value maxv = Value::integer(std::numeric_limits<std::int64_t>::max());
  const Value sum = ops::add(maxv, Value::integer(1));
  EXPECT_TRUE(sum.isInteger());
  EXPECT_FALSE(sum.isSmallInt());
  EXPECT_EQ(sum.bigInt().toString(), "9223372036854775808");
  const Value prod = ops::mul(maxv, maxv);
  EXPECT_EQ(prod.bigInt(), BigInt{std::numeric_limits<std::int64_t>::max()} *
                               BigInt{std::numeric_limits<std::int64_t>::max()});
  // INT64_MIN / -1 overflows in hardware; must promote, not trap.
  const Value minv = Value::integer(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(ops::div(minv, Value::integer(-1)).bigInt().toString(), "9223372036854775808");
  EXPECT_EQ(ops::negate(minv).bigInt().toString(), "9223372036854775808");
}

TEST(ValueArith, MixedRealPromotion) {
  EXPECT_DOUBLE_EQ(ops::add(Value::integer(1), Value::real(0.5)).real(), 1.5);
  EXPECT_DOUBLE_EQ(ops::mul(Value::real(2.0), Value::integer(3)).real(), 6.0);
  EXPECT_DOUBLE_EQ(ops::div(Value::integer(1), Value::real(4.0)).real(), 0.25);
}

TEST(ValueArith, StringsCoerceInArithmetic) {
  EXPECT_EQ(ops::add(Value::string("2"), Value::string("3")).smallInt(), 5);
  EXPECT_THROW(ops::add(Value::string("two"), Value::integer(1)), IconError);
}

TEST(ValueArith, DivisionByZero) {
  EXPECT_THROW(ops::div(Value::integer(1), Value::integer(0)), IconError);
  EXPECT_THROW(ops::mod(Value::integer(1), Value::integer(0)), IconError);
  EXPECT_THROW(ops::div(Value::real(1), Value::real(0)), IconError);
}

TEST(ValueArith, Power) {
  EXPECT_EQ(ops::power(Value::integer(2), Value::integer(10)).smallInt(), 1024);
  EXPECT_EQ(ops::power(Value::integer(2), Value::integer(100)).bigInt(), BigInt{2}.pow(100));
  EXPECT_DOUBLE_EQ(ops::power(Value::integer(2), Value::integer(-1)).real(), 0.5);
  EXPECT_DOUBLE_EQ(ops::power(Value::real(9.0), Value::real(0.5)).real(), 3.0);
}

TEST(ValueCompare, ComparisonsFailRatherThanReturnFalse) {
  // x < y yields y on success, nullopt (failure) otherwise — the
  // goal-directed contract that drives backtracking search.
  const auto lt = ops::numLT(Value::integer(3), Value::integer(5));
  ASSERT_TRUE(lt.has_value());
  EXPECT_EQ(lt->smallInt(), 5) << "comparison yields its right operand";
  EXPECT_FALSE(ops::numLT(Value::integer(5), Value::integer(3)).has_value());
  EXPECT_TRUE(ops::numLE(Value::integer(5), Value::integer(5)).has_value());
  EXPECT_FALSE(ops::numGT(Value::integer(5), Value::integer(5)).has_value());
  EXPECT_TRUE(ops::numEQ(Value::string("4"), Value::real(4.0)).has_value())
      << "numeric comparison coerces";
}

TEST(ValueCompare, MixedWidthNumericComparison) {
  EXPECT_TRUE(ops::numLT(Value::integer(1), Value::integer(BigInt{2}.pow(70))).has_value());
  EXPECT_TRUE(
      ops::numGT(Value::integer(BigInt{2}.pow(70)), Value::integer(BigInt{2}.pow(69))).has_value());
}

TEST(ValueCompare, ValueEquivalence) {
  EXPECT_TRUE(ops::valEQ(Value::string("abc"), Value::string("abc")).has_value());
  EXPECT_FALSE(ops::valEQ(Value::integer(1), Value::real(1.0)).has_value())
      << "=== distinguishes integer from real";
  auto l1 = ListImpl::create();
  auto l2 = ListImpl::create();
  EXPECT_FALSE(Value::list(l1).equals(Value::list(l2))) << "structures compare by identity";
  EXPECT_TRUE(Value::list(l1).equals(Value::list(l1)));
}

TEST(ValueCompare, CrossTypeOrderingIsTotal) {
  const std::vector<Value> ordered = {
      Value::null(), Value::integer(1), Value::real(1.0), Value::string("a"),
      Value::list(ListImpl::create())};
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      const int c = ordered[i].compare(ordered[j]);
      if (i < j) {
        EXPECT_LT(c, 0) << i << " vs " << j;
      } else if (i == j) {
        EXPECT_EQ(c, 0);
      } else {
        EXPECT_GT(c, 0);
      }
    }
  }
}

TEST(ValueCompare, HashAgreesWithEquals) {
  EXPECT_EQ(Value::string("xyz").hash(), Value::string("xyz").hash());
  EXPECT_EQ(Value::integer(7).hash(), Value::integer(BigInt{7}).hash())
      << "canonicalized small ints hash alike";
  EXPECT_NE(Value::integer(1).hash(), Value::real(1.0).hash());
}

TEST(ValueImage, TypeRevealingRendering) {
  EXPECT_EQ(Value::null().image(), "&null");
  EXPECT_EQ(Value::integer(42).image(), "42");
  EXPECT_EQ(Value::real(2.0).image(), "2.0") << "reals always show a decimal point";
  EXPECT_EQ(Value::string("hi\n").image(), "\"hi\\n\"");
  auto l = ListImpl::create();
  l->put(Value::integer(1));
  l->put(Value::string("a"));
  EXPECT_EQ(Value::list(l).image(), "[1,\"a\"]");
  EXPECT_EQ(Value::integer(7).typeName(), "integer");
  EXPECT_EQ(Value::proc(ProcImpl::create("f", nullptr)).image(), "procedure f");
}

TEST(ValueImage, DisplayStringUnquotesStrings) {
  EXPECT_EQ(Value::string("hi").toDisplayString(), "hi");
  EXPECT_EQ(Value::integer(42).toDisplayString(), "42");
}

TEST(ValueSize, StarOperator) {
  EXPECT_EQ(Value::string("hello").size(), 5);
  auto l = ListImpl::create();
  l->put(Value::integer(1));
  EXPECT_EQ(Value::list(l).size(), 1);
  EXPECT_THROW((void)Value::integer(5).size(), IconError);
  EXPECT_THROW((void)Value::null().size(), IconError);
}

TEST(ValueConcat, StringConcatenation) {
  EXPECT_EQ(ops::concat(Value::string("ab"), Value::string("cd")).str(), "abcd");
  EXPECT_EQ(ops::concat(Value::string("n="), Value::integer(4)).str(), "n=4");
}

}  // namespace
}  // namespace congen

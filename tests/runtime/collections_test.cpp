// collections_test.cpp — lists, tables, sets, and trapped variables.
#include "runtime/collections.hpp"

#include <gtest/gtest.h>

#include "runtime/var.hpp"

namespace congen {
namespace {

TEST(ListOps, QueueAndStackBehaviour) {
  auto l = ListImpl::create();
  EXPECT_TRUE(l->empty());
  l->put(Value::integer(1));   // [1]
  l->put(Value::integer(2));   // [1,2]
  l->push(Value::integer(0));  // [0,1,2]
  EXPECT_EQ(l->size(), 3);
  EXPECT_EQ(l->get()->smallInt(), 0);   // removes left
  EXPECT_EQ(l->pull()->smallInt(), 2);  // removes right
  EXPECT_EQ(l->get()->smallInt(), 1);
  EXPECT_FALSE(l->get().has_value()) << "get fails on empty";
  EXPECT_FALSE(l->pull().has_value());
}

TEST(ListOps, IconIndexing) {
  auto l = ListImpl::create({Value::integer(10), Value::integer(20), Value::integer(30)});
  EXPECT_EQ(l->at(1)->smallInt(), 10) << "1-based";
  EXPECT_EQ(l->at(3)->smallInt(), 30);
  EXPECT_EQ(l->at(-1)->smallInt(), 30) << "negative counts from the right";
  EXPECT_EQ(l->at(-3)->smallInt(), 10);
  EXPECT_FALSE(l->at(0).has_value());
  EXPECT_FALSE(l->at(4).has_value());
  EXPECT_FALSE(l->at(-4).has_value());
}

TEST(ListOps, AssignByIndex) {
  auto l = ListImpl::create({Value::integer(1), Value::integer(2)});
  EXPECT_TRUE(l->assign(2, Value::integer(99)));
  EXPECT_EQ(l->at(2)->smallInt(), 99);
  EXPECT_TRUE(l->assign(-2, Value::integer(7)));
  EXPECT_EQ(l->at(1)->smallInt(), 7);
  EXPECT_FALSE(l->assign(5, Value::integer(0)));
}

TEST(TableOps, DefaultValueSemantics) {
  auto t = TableImpl::create(Value::integer(0));
  EXPECT_EQ(t->lookup(Value::string("absent")).smallInt(), 0) << "default for absent key";
  EXPECT_FALSE(t->member(Value::string("absent"))) << "lookup does not insert";
  t->insert(Value::string("a"), Value::integer(5));
  EXPECT_EQ(t->lookup(Value::string("a")).smallInt(), 5);
  EXPECT_TRUE(t->member(Value::string("a")));
  EXPECT_EQ(t->size(), 1);
  EXPECT_TRUE(t->erase(Value::string("a")));
  EXPECT_FALSE(t->erase(Value::string("a")));
}

TEST(TableOps, MixedTypeKeys) {
  auto t = TableImpl::create();
  t->insert(Value::integer(1), Value::string("int"));
  t->insert(Value::string("1"), Value::string("str"));
  t->insert(Value::real(1.0), Value::string("real"));
  EXPECT_EQ(t->size(), 3) << "1, \"1\" and 1.0 are distinct keys";
  EXPECT_EQ(t->lookup(Value::integer(1)).str(), "int");
  EXPECT_EQ(t->lookup(Value::string("1")).str(), "str");
}

TEST(TableOps, SortedKeysDeterministic) {
  auto t = TableImpl::create();
  t->insert(Value::string("b"), Value::null());
  t->insert(Value::string("a"), Value::null());
  t->insert(Value::integer(5), Value::null());
  const auto keys = t->sortedKeys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].smallInt(), 5) << "integers rank before strings";
  EXPECT_EQ(keys[1].str(), "a");
  EXPECT_EQ(keys[2].str(), "b");
}

TEST(SetOps, MembershipAndDedup) {
  auto s = SetImpl::create();
  EXPECT_TRUE(s->insert(Value::integer(1)));
  EXPECT_FALSE(s->insert(Value::integer(1))) << "duplicate insert";
  EXPECT_TRUE(s->insert(Value::string("1"))) << "different type, different member";
  EXPECT_EQ(s->size(), 2);
  EXPECT_TRUE(s->member(Value::integer(1)));
  EXPECT_TRUE(s->erase(Value::integer(1)));
  EXPECT_FALSE(s->member(Value::integer(1)));
}

TEST(TrappedVars, ListElemVarReadsAndWrites) {
  auto l = ListImpl::create({Value::integer(1), Value::integer(2)});
  auto v = ListElemVar::create(l, 2);
  EXPECT_EQ(v->get().smallInt(), 2);
  v->set(Value::integer(42));
  EXPECT_EQ(l->at(2)->smallInt(), 42);
}

TEST(TrappedVars, TableElemVarCreatesOnAssign) {
  auto t = TableImpl::create(Value::integer(-1));
  auto v = TableElemVar::create(t, Value::string("k"));
  EXPECT_EQ(v->get().smallInt(), -1) << "reads the default before assignment";
  v->set(Value::integer(9));
  EXPECT_EQ(t->lookup(Value::string("k")).smallInt(), 9);
}

TEST(TrappedVars, ComputedVarReadOnlyThrowsOnSet) {
  auto v = ComputedVar::create([] { return Value::integer(7); });
  EXPECT_EQ(v->get().smallInt(), 7);
  EXPECT_THROW(v->set(Value::integer(1)), IconError);
}

TEST(TrappedVars, ComputedVarRoundTrip) {
  Value storage = Value::integer(0);
  auto v = ComputedVar::create([&] { return storage; }, [&](Value x) { storage = std::move(x); });
  v->set(Value::string("hi"));
  EXPECT_EQ(storage.str(), "hi");
  EXPECT_EQ(v->get().str(), "hi");
}

TEST(ReferenceSemantics, ListsAlias) {
  auto l = ListImpl::create();
  const Value a = Value::list(l);
  const Value b = a;  // copying the Value aliases the structure
  a.list()->put(Value::integer(1));
  EXPECT_EQ(b.list()->size(), 1);
}

}  // namespace
}  // namespace congen

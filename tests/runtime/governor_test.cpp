// governor_test.cpp — the resource governor: per-interpreter quotas,
// runaway containment, and graceful degradation.
//
// Three layers under test:
//  - the ResourceGovernor accounting core (charges, trips, epochs,
//    termination) through its direct API;
//  - the process-level Admission gate and the Supervisor watchdog;
//  - end-to-end enforcement through the Interpreter: both backends must
//    raise the identical 81x error for the same exhausted budget (fuel
//    parity is the headline — vmStepLimit used to be VM-only), and the
//    fault-injection allocation sites must surface as the same clean,
//    catchable 305 a real bad_alloc produces.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "concur/fault_injection.hpp"
#include "interp/interpreter.hpp"
#include "obs/metrics.hpp"
#include "runtime/error.hpp"
#include "runtime/governor.hpp"

namespace congen {
namespace {

using governor::Budget;
using governor::Limits;
using governor::ResourceGovernor;

/// Run `fn`, returning the IconError number it throws (-1 = no throw).
int iconErrorNumber(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const IconError& e) {
    return e.number();
  }
  return -1;
}

/// Admission is process-global; every test restores the unlimited seed
/// configuration so suites sharing this binary stay independent.
class AdmissionConfigGuard {
 public:
  AdmissionConfigGuard() : saved_(governor::Admission::global().config()) {}
  ~AdmissionConfigGuard() { governor::Admission::global().configure(saved_); }

 private:
  governor::Admission::Config saved_;
};

// ---------------------------------------------------------------------------
// Accounting core (direct API)
// ---------------------------------------------------------------------------

TEST(GovernorCore, FuelTripsAt810AndSetLimitRestartsTheEpoch) {
  Limits limits;
  limits.maxFuel = 100;
  auto gov = ResourceGovernor::create(limits);
  gov->chargeSteps(60);
  EXPECT_EQ(gov->usage().fuelSpent, 60u);
  EXPECT_EQ(iconErrorNumber([&] { gov->chargeSteps(60); }), 810);
  EXPECT_EQ(gov->usage().quotaTrips, 1u);

  // setquota("fuel", n) semantics: a fresh budget, not the remainder.
  gov->setLimit(Budget::Fuel, 200);
  EXPECT_EQ(gov->usage().fuelSpent, 0u);
  gov->chargeSteps(150);
  EXPECT_EQ(gov->usage().fuelSpent, 150u);
}

TEST(GovernorCore, ScriptLimitsCannotLoosenHostBudgets) {
  Limits limits;
  limits.maxFuel = 100;
  limits.maxHeapBytes = 1000;
  auto gov = ResourceGovernor::create(limits);
  gov->chargeSteps(60);

  // setquota("fuel", 0) restores the host limit instead of removing it,
  // and a host-imposed fuel epoch is never restarted by the script.
  EXPECT_EQ(gov->setScriptLimit(Budget::Fuel, 0), 100u);
  EXPECT_EQ(gov->usage().fuelSpent, 60u);
  // A raise clamps to the host ceiling; spent still stands.
  EXPECT_EQ(gov->setScriptLimit(Budget::Fuel, 1u << 30), 100u);
  EXPECT_EQ(gov->usage().fuelSpent, 60u);
  EXPECT_EQ(iconErrorNumber([&] { gov->chargeSteps(60); }), 810);

  // Tightening below the host value is allowed...
  EXPECT_EQ(gov->setScriptLimit(Budget::Heap, 400), 400u);
  EXPECT_EQ(iconErrorNumber([&] { gov->adjustHeap(500, 500); }), 811);
  // ...and 0 goes back to the host baseline, not to unlimited.
  EXPECT_EQ(gov->setScriptLimit(Budget::Heap, 0), 1000u);
  gov->adjustHeap(500, 500);
  EXPECT_EQ(gov->usage().heapReserved, 500u);

  // Budgets the host never set stay fully script-managed — the
  // thread-default governor is the all-zero case of this.
  EXPECT_EQ(gov->setScriptLimit(Budget::Coexprs, 2), 2u);
  EXPECT_EQ(gov->setScriptLimit(Budget::Coexprs, 0), 0u);

  // The host API stays unrestricted and moves the baseline with it.
  gov->setLimit(Budget::Fuel, 200);
  EXPECT_EQ(gov->usage().fuelSpent, 0u) << "host setLimit grants a fresh epoch";
  EXPECT_EQ(gov->setScriptLimit(Budget::Fuel, 0), 200u);
}

TEST(GovernorCore, ThreadTeardownChargesPositivePendingHeap) {
  std::shared_ptr<ResourceGovernor> gov;
  std::thread([&] {
    gov = governor::currentOrThreadDefault();  // limitless thread default
    // Stays pending (below the 64 KiB flush batch) until the thread's
    // accounting cell is destroyed — which must charge it, not drop it:
    // the matching frees may be credited from other threads later.
    governor::detail::chargeHeapSlow(4096);
  }).join();
  ASSERT_NE(gov, nullptr);
  EXPECT_EQ(gov->usage().heapReserved, 4096u)
      << "a dying thread's positive pending batch must land on the governor";
}

TEST(GovernorCore, TerminateThrows816AndSignalsStop) {
  auto gov = ResourceGovernor::create(Limits{});
  EXPECT_FALSE(gov->stopToken().cancelled());
  gov->terminate();
  EXPECT_TRUE(gov->terminated());
  EXPECT_TRUE(gov->stopToken().cancelled());
  // Terminated wins over any remaining budget at every charge point.
  EXPECT_EQ(iconErrorNumber([&] { gov->chargeSteps(1); }), 816);
}

TEST(GovernorCore, HeapTripsAt811AndBacksOutTheAbandonedAllocation) {
  Limits limits;
  limits.maxHeapBytes = 1000;
  auto gov = ResourceGovernor::create(limits);
  gov->adjustHeap(500, 500);
  EXPECT_EQ(gov->usage().heapReserved, 500u);

  // The 600 new bytes belong to an allocation the throw abandons: they
  // must be backed out, leaving the 500 live bytes charged.
  EXPECT_EQ(iconErrorNumber([&] { gov->adjustHeap(600, 600); }), 811);
  EXPECT_EQ(gov->usage().heapReserved, 500u);
  EXPECT_EQ(gov->usage().quotaTrips, 1u);

  gov->adjustHeap(-500, 0);
  EXPECT_EQ(gov->usage().heapReserved, 0u);
  gov->adjustHeap(-100, 0);  // stray credit clamps, never underflows
  EXPECT_EQ(gov->usage().heapReserved, 0u);
}

TEST(GovernorCore, PipeAndCoexprBudgetsTripAt812) {
  Limits limits;
  limits.maxPipes = 1;
  limits.maxCoexprs = 2;
  auto gov = ResourceGovernor::create(limits);

  gov->chargePipe();
  EXPECT_EQ(gov->usage().livePipes, 1u);
  EXPECT_EQ(iconErrorNumber([&] { gov->chargePipe(); }), 812);
  EXPECT_EQ(gov->usage().livePipes, 1u) << "a tripped charge must not stick";
  gov->creditPipe();
  EXPECT_EQ(gov->usage().livePipes, 0u);

  gov->chargeCoexpr();
  gov->chargeCoexpr();
  EXPECT_EQ(iconErrorNumber([&] { gov->chargeCoexpr(); }), 812);
  EXPECT_EQ(gov->usage().liveCoexprs, 2u);
  gov->creditCoexpr();
  gov->creditCoexpr();
  EXPECT_EQ(gov->usage().liveCoexprs, 0u);
}

TEST(GovernorCore, ClampPipeCapacityDegradesGracefully) {
  auto unlimited = ResourceGovernor::create(Limits{});
  EXPECT_EQ(unlimited->clampPipeCapacity(0), 0u) << "0 stays unbounded without a budget";
  EXPECT_EQ(unlimited->clampPipeCapacity(7), 7u);

  Limits limits;
  limits.maxPipeDepth = 8;
  auto gov = ResourceGovernor::create(limits);
  EXPECT_EQ(gov->clampPipeCapacity(0), 8u) << "an unbounded request clamps to the budget";
  EXPECT_EQ(gov->clampPipeCapacity(100), 8u);
  EXPECT_EQ(gov->clampPipeCapacity(4), 4u) << "requests under the budget pass through";
}

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

TEST(GovernorAdmission, ShedsNewSessionsWithTypedRefusal815) {
  AdmissionConfigGuard guard;
  auto& admission = governor::Admission::global();
  governor::Admission::Config config;
  config.maxSessions = 1;
  admission.configure(config);

  const std::uint64_t sheds0 = admission.sheds();
  Limits limits;
  limits.maxFuel = 1000;
  auto first = ResourceGovernor::create(limits);
  EXPECT_EQ(admission.liveSessions(), 1u);
  EXPECT_EQ(iconErrorNumber([&] { auto second = ResourceGovernor::create(limits); }), 815);
  EXPECT_EQ(admission.sheds() - sheds0, 1u);

  // Releasing the live session frees the slot for the next admit.
  first.reset();
  EXPECT_EQ(admission.liveSessions(), 0u);
  auto third = ResourceGovernor::create(limits);
  EXPECT_EQ(admission.liveSessions(), 1u);
}

TEST(GovernorAdmission, CommittedHeapCeilingCountsAdmittedBudgets) {
  AdmissionConfigGuard guard;
  auto& admission = governor::Admission::global();
  governor::Admission::Config config;
  config.maxCommittedHeapBytes = 1 << 20;
  admission.configure(config);

  Limits big;
  big.maxHeapBytes = 2u << 20;
  EXPECT_EQ(iconErrorNumber([&] { auto gov = ResourceGovernor::create(big); }), 815)
      << "one session asking for more than the process ceiling is shed";

  Limits half;
  half.maxHeapBytes = 512u << 10;
  auto a = ResourceGovernor::create(half);
  auto b = ResourceGovernor::create(half);
  EXPECT_EQ(admission.committedHeapBytes(), 1u << 20);
  EXPECT_EQ(iconErrorNumber([&] { auto c = ResourceGovernor::create(half); }), 815);
  a.reset();
  EXPECT_EQ(admission.committedHeapBytes(), 512u << 10);
}

TEST(GovernorAdmission, LimitlessGovernorsBypassTheGate) {
  AdmissionConfigGuard guard;
  auto& admission = governor::Admission::global();
  governor::Admission::Config config;
  config.maxSessions = 1;
  admission.configure(config);

  Limits limits;
  limits.maxFuel = 1;
  auto governed = ResourceGovernor::create(limits);
  // A limitless governor (congen-run --supervise without --max-*) only
  // provides a StopSource root; it commits nothing and is never shed.
  auto limitless = ResourceGovernor::create(Limits{});
  EXPECT_EQ(admission.liveSessions(), 1u);
}

// ---------------------------------------------------------------------------
// Supervisor watchdog
// ---------------------------------------------------------------------------

TEST(GovernorSupervisor, EscalatesSoftStopThenHardTeardownWithDiagnostics) {
  auto& supervisor = governor::Supervisor::global();
  const std::uint64_t soft0 = supervisor.softStopsIssued();
  const std::uint64_t hard0 = supervisor.hardTeardownsIssued();

  auto gov = ResourceGovernor::create(Limits{});
  std::atomic<bool> diagnosticsRan{false};
  auto watch = supervisor.watch(gov, std::chrono::milliseconds(20), std::chrono::milliseconds(60),
                                [&diagnosticsRan] { diagnosticsRan = true; });

  for (int i = 0; i < 500 && !gov->terminated(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(gov->terminated());
  EXPECT_TRUE(gov->stopToken().cancelled()) << "soft stop precedes the hard teardown";
  EXPECT_TRUE(diagnosticsRan.load()) << "diagnostics run before terminate()";
  EXPECT_GE(supervisor.softStopsIssued() - soft0, 1u);
  EXPECT_GE(supervisor.hardTeardownsIssued() - hard0, 1u);
  EXPECT_EQ(iconErrorNumber([&] { gov->chargeSteps(1); }), 816);
}

TEST(GovernorSupervisor, CancelWaitsOutAnInFlightEscalation) {
  auto gov = ResourceGovernor::create(Limits{});
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  // Both deadlines already due: the next tick escalates straight to the
  // hard teardown, whose diagnostics callback runs for a while.
  auto watch = governor::Supervisor::global().watch(
      gov, std::chrono::milliseconds(0), std::chrono::milliseconds(0), [&] {
        started = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        finished = true;
      });
  while (!started.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // The escalation is in flight: cancel() must block until it completes
  // rather than return while diagnostics can still observe the session.
  watch.cancel();
  EXPECT_TRUE(finished.load()) << "cancel() returned while diagnostics still ran";
  EXPECT_TRUE(gov->terminated()) << "cancel() returned before terminate() finished";
}

TEST(GovernorSupervisor, CancelledWatchNeverEscalates) {
  auto gov = ResourceGovernor::create(Limits{});
  auto watch = governor::Supervisor::global().watch(gov, std::chrono::milliseconds(20),
                                                   std::chrono::milliseconds(20));
  watch.cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(gov->terminated());
  EXPECT_FALSE(gov->stopToken().cancelled());
}

// ---------------------------------------------------------------------------
// End-to-end enforcement through the Interpreter
// ---------------------------------------------------------------------------

/// Drive a runaway loop under `quotas` on the given backend and return
/// the IconError number it trips with.
int runawayErrorNumber(interp::Backend backend, const Limits& quotas) {
  interp::Interpreter::Options opts;
  opts.backend = backend;
  opts.quotas = quotas;
  interp::Interpreter interp{opts};
  interp.load("def spin() { while 1 do 0; }");
  return iconErrorNumber([&] { interp.evalAll("spin()"); });
}

TEST(GovernorInterpreter, FuelParityBothBackendsRaise810) {
  Limits quotas;
  quotas.maxFuel = 50000;
  // The headline of the unified fuel counter: the tree walker trips the
  // SAME typed error the VM does, at the same budget.
  EXPECT_EQ(runawayErrorNumber(interp::Backend::kTree, quotas), 810);
  EXPECT_EQ(runawayErrorNumber(interp::Backend::kVm, quotas), 810);
}

TEST(GovernorInterpreter, VmStepLimitIsAFuelAlias) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kVm;
  opts.vmStepLimit = 50000;  // legacy spelling, same budget
  interp::Interpreter interp{opts};
  interp.load("def spin() { while 1 do 0; }");
  EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("spin()"); }), 810);
}

TEST(GovernorInterpreter, FuelTripIsCatchableViaErrorConversion) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.quotas.maxFuel = 50000;
  interp::Interpreter interp{opts};
  // One &error credit converts the 810 into failure of the expression it
  // occurred in — the call fails instead of erroring out, exactly like
  // any other convertible run-time error — and &errornumber records it.
  interp.load("def trap() { &error := 1; while 1 do 0; return \"done\"; }");
  EXPECT_TRUE(interp.evalAll("trap()").empty()) << "converted trip fails the call";
  // Grant fresh fuel so the inspection itself can run.
  interp.resourceGovernor()->setLimit(Budget::Fuel, 1u << 20);
  EXPECT_EQ(interp.evalOne("&errornumber")->smallInt(), 810);
}

TEST(GovernorInterpreter, SetquotaCannotEraseHostImposedBudgets) {
  for (const auto backend : {interp::Backend::kTree, interp::Backend::kVm}) {
    interp::Interpreter::Options opts;
    opts.backend = backend;
    opts.quotas.maxFuel = 50000;
    interp::Interpreter interp{opts};
    // The escape attempt: drop the fuel budget, then grab a huge one
    // (either of which used to reset the spent counter too). Both must
    // clamp to the host envelope and leave the epoch alone.
    interp.load(
        "def jail() { setquota(\"fuel\", 0); setquota(\"fuel\", 100000000); while 1 do 0; }");
    EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("jail()"); }), 810);
  }
}

TEST(GovernorInterpreter, SupervisorTerminationIsNotConvertibleViaError) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.governed = true;
  interp::Interpreter interp{opts};
  // A script holding a mountain of &error credit still cannot convert
  // the supervisor's 816 into failure and keep running — termination
  // must unwind, not degrade into one charge batch per credit.
  interp.load("def resist() { &error := 1000000000; while 1 do 0; }");
  auto watch = governor::Supervisor::global().watch(
      interp.resourceGovernor(), std::chrono::milliseconds(20), std::chrono::milliseconds(60));
  EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("resist()"); }), 816);
}

TEST(GovernorInterpreter, DepthQuotaParityBothBackendsRaise813) {
  for (const auto backend : {interp::Backend::kTree, interp::Backend::kVm}) {
    interp::Interpreter::Options opts;
    opts.backend = backend;
    opts.quotas.maxDepth = 16;
    interp::Interpreter interp{opts};
    interp.load("def down(n) { if n <= 0 then return 0; return 1 + down(n - 1); }");
    EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("down(100)"); }), 813);
    // The depth guard unwinds exactly: the interpreter stays usable and
    // recursion under the budget still completes.
    EXPECT_EQ(interp.evalOne("down(8)")->smallInt(), 8);
  }
}

TEST(GovernorInterpreter, HeapQuotaRaises811) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.quotas.maxHeapBytes = 1u << 20;
  interp::Interpreter interp{opts};
  // Accumulate live payload objects until the byte budget trips (each
  // [] is a charged list payload held alive by L).
  interp.load("def hoard() { local L, i; L := []; every i := 1 to 10000000 do put(L, []); }");
  EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("hoard()"); }), 811);
  // Lift the budget: the session is degraded, not poisoned.
  interp.resourceGovernor()->setLimit(Budget::Heap, 0);
  EXPECT_EQ(interp.evalOne("2 + 2")->smallInt(), 4);
}

TEST(GovernorInterpreter, CoexprQuotaRaises812) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.quotas.maxCoexprs = 2;
  interp::Interpreter interp{opts};
  EXPECT_TRUE(interp.evalOne("c1 := |<> 1").has_value());
  EXPECT_TRUE(interp.evalOne("c2 := |<> 2").has_value());
  EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("c3 := |<> 3"); }), 812);
}

TEST(GovernorInterpreter, PipeQuotaRaises812) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.quotas.maxPipes = 1;
  interp::Interpreter interp{opts};
  EXPECT_TRUE(interp.evalOne("p1 := |> (1 to 3)").has_value());
  EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("p2 := |> (1 to 3)"); }), 812);
}

TEST(GovernorInterpreter, PipeDepthClampIsGracefulNotAnError) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.quotas.maxPipeDepth = 4;  // far below the 1024 default capacity
  interp::Interpreter interp{opts};
  // Degradation contract: the pipe shrinks to the budget and the full
  // stream still flows — no quota error, no loss.
  EXPECT_EQ(interp.evalAll("! |> (1 to 1000)").size(), 1000u);
}

TEST(GovernorInterpreter, SupervisorHardTeardownInterruptsARunawayDrive) {
  interp::Interpreter::Options opts;
  opts.backend = interp::Backend::kTree;
  opts.governed = true;  // limitless governor: containment without quotas
  interp::Interpreter interp{opts};
  interp.load("def spin() { while 1 do 0; }");
  auto watch = governor::Supervisor::global().watch(
      interp.resourceGovernor(), std::chrono::milliseconds(20), std::chrono::milliseconds(60));
  EXPECT_EQ(iconErrorNumber([&] { interp.evalAll("spin()"); }), 816);
}

TEST(GovernorInterpreter, ObsRowsAccumulateFuelAndTrips) {
  auto& registry = obs::Registry::global();
  const auto before = registry.snapshot();
  Limits quotas;
  quotas.maxFuel = 50000;
  EXPECT_EQ(runawayErrorNumber(interp::Backend::kTree, quotas), 810);
  const auto after = registry.snapshot();
  EXPECT_GT(after.counterValue("governor.fuel_spent"), before.counterValue("governor.fuel_spent"));
  EXPECT_GE(after.counterValue("governor.quota_trips"),
            before.counterValue("governor.quota_trips") + 1);
}

// ---------------------------------------------------------------------------
// Allocation-failure injection (ArenaAlloc / RcAlloc sites)
// ---------------------------------------------------------------------------

/// Arm exactly one allocation site with certain failure; everything else
/// stays quiet. Disarms on scope exit.
class ScopedAllocFault {
 public:
  explicit ScopedAllocFault(testing::FaultSite site) {
    testing::FaultInjector::instance().arm(42, testing::SitePolicy{});  // zero all sites
    testing::SitePolicy fail;
    fail.failPerMille = 1000;
    testing::FaultInjector::instance().armSite(site, fail);
  }
  ~ScopedAllocFault() { testing::FaultInjector::instance().disarm(); }
};

TEST(GovernorFaultInjection, RcAllocFailureSurfacesAsCatchable305) {
  if (!testing::FaultInjector::compiledIn()) {
    GTEST_SKIP() << "build without CONGEN_FAULT_INJECTION";
  }
  interp::Interpreter interp;
  {
    ScopedAllocFault fault(testing::FaultSite::RcAlloc);
    // The concat result exceeds the SSO capacity, so its heap-spill
    // payload is the first RcAlloc on the path.
    EXPECT_EQ(
        iconErrorNumber([&] { interp.evalAll("\"aaaaaaaaaa\" || \"bbbbbbbbbb\""); }), 305);
  }
  EXPECT_EQ(interp.evalOne("2 + 2")->smallInt(), 4) << "clean error, session survives";
}

TEST(GovernorFaultInjection, ArenaAllocFailureSurfacesAsCatchable305) {
  if (!testing::FaultInjector::compiledIn()) {
    GTEST_SKIP() << "build without CONGEN_FAULT_INJECTION";
  }
  interp::Interpreter interp;
  // A 400-deep alternation holds more same-class kernel nodes live than
  // any bin caches (kMaxPerClass = 128), forcing the fall-through to
  // operator new — the instrumented site — even with warm bins.
  std::string expr = "1";
  for (int i = 0; i < 400; ++i) expr = "(" + expr + " | 1)";
  {
    ScopedAllocFault fault(testing::FaultSite::ArenaAlloc);
    EXPECT_EQ(iconErrorNumber([&] { interp.evalAll(expr); }), 305);
  }
  EXPECT_EQ(interp.evalAll(expr).size(), 401u) << "nodes freed on unwind, arena intact";
}

TEST(GovernorFaultInjection, ProducerSideAllocFailureDoesNotDeadlockThePipe) {
  if (!testing::FaultInjector::compiledIn()) {
    GTEST_SKIP() << "build without CONGEN_FAULT_INJECTION";
  }
  interp::Interpreter interp;
  // The producer allocates a fresh heap string per element (the prefix
  // defeats SSO). Let the pipeline start clean, then arm: the next
  // producer-side allocation fails, the 305 crosses the pipe, and the
  // drain must neither hang nor leak.
  auto gen = interp.eval("! |> (\"xxxxxxxxxxxxxxxxxxxx\" || (1 to 1000000))");
  ASSERT_TRUE(gen->nextValue().has_value());
  {
    ScopedAllocFault fault(testing::FaultSite::RcAlloc);
    EXPECT_EQ(iconErrorNumber([&] {
                while (gen->nextValue()) {
                }
              }),
              305)
        << "the producer's allocation failure surfaces at the consumer";
  }
  gen.reset();
  EXPECT_EQ(interp.evalOne("! |> 42")->smallInt(), 42) << "the pool still serves new work";
}

}  // namespace
}  // namespace congen

// serve_test.cpp — integration suite for the congen-serve daemon core,
// over real sockets against an in-process Server on an ephemeral port.
//
// The pyramid's middle layer: protocol_test.cpp covers the pure
// byte-in/byte-out layer, this file covers one Server end to end —
// session lifecycle, request pipelining, concurrent tenants, the typed
// containment surface (810/811 quota trips, 815 admission shed, 816
// supervisor termination), HTTP observability on the same port, and the
// disconnect-cancels-producer regression (a hung-up client must retire
// its pipe producers, observed through the pipe.live gauge).
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/runtime_stats.hpp"
#include "serve/server.hpp"
#include "serve_client.hpp"

namespace congen::serve {
namespace {

using testing::TestClient;

Server::Config baseConfig() {
  Server::Config config;
  config.port = 0;  // ephemeral
  return config;
}

/// Poll `cond` for up to `budget`; true when it held.
template <typename F>
bool eventually(F cond, std::chrono::milliseconds budget = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

int responseCode(const std::string& line) {
  const std::size_t at = line.find("\"code\":");
  return at == std::string::npos ? 0 : std::atoi(line.c_str() + at + 7);
}

TEST(ServeLifecycle, SubmitNextCancelClose) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  client.send({Verb::kSubmit, "1 to 5", 0});
  client.expectHello();
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"generator\"}");
  EXPECT_EQ(client.roundTrip({Verb::kNext, "", 3}),
            "{\"ok\":true,\"done\":false,\"results\":[\"1\",\"2\",\"3\"]}");
  EXPECT_EQ(client.roundTrip({Verb::kNext, "", 3}),
            "{\"ok\":true,\"done\":true,\"results\":[\"4\",\"5\"]}");
  EXPECT_EQ(client.roundTrip({Verb::kCancel, "", 0}), "{\"ok\":true,\"kind\":\"cancelled\"}");
  EXPECT_EQ(client.roundTrip({Verb::kClose, "", 0}), "{\"ok\":true,\"kind\":\"bye\"}");
  EXPECT_TRUE(client.atEof());
  EXPECT_TRUE(eventually([&] { return server.liveSessions() == 0; }));
  server.stop();
}

TEST(ServeLifecycle, ProgramLoadsThenCallsDefinitions) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  client.send({Verb::kSubmit, "def double(x) { return x * 2; }", 0});
  client.expectHello();
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"loaded\"}");
  EXPECT_EQ(client.roundTrip({Verb::kSubmit, "double(1 to 3)", 0}),
            "{\"ok\":true,\"kind\":\"generator\"}");
  EXPECT_EQ(client.roundTrip({Verb::kNext, "", 10}),
            "{\"ok\":true,\"done\":true,\"results\":[\"2\",\"4\",\"6\"]}");
  server.stop();
}

TEST(ServeLifecycle, PipelinedRequestsAnswerInOrder) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  // All four frames hit the socket before any response is read: the
  // session task drains them serially, responses in request order.
  client.send({Verb::kSubmit, "\"a\" | \"b\"", 0});
  client.send({Verb::kNext, "", 1});
  client.send({Verb::kNext, "", 5});
  client.send({Verb::kClose, "", 0});
  client.expectHello();
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"generator\"}");
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"done\":false,\"results\":[\"\\\"a\\\"\"]}");
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"done\":true,\"results\":[\"\\\"b\\\"\"]}");
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"bye\"}");
  EXPECT_TRUE(client.atEof());
  server.stop();
}

TEST(ServeLifecycle, NextWithoutGeneratorIs901) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  client.send({Verb::kNext, "", 1});
  client.expectHello();
  EXPECT_EQ(responseCode(client.readLine()), kErrNoGenerator);
  // The session survives a 901: SUBMIT still works.
  EXPECT_EQ(client.roundTrip({Verb::kSubmit, "42", 0}), "{\"ok\":true,\"kind\":\"generator\"}");
  server.stop();
}

TEST(ServeLifecycle, UnknownVerbIs900AndSessionSurvives) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  client.sendPayload("BOGUS\nwhatever");
  client.expectHello();
  EXPECT_EQ(responseCode(client.readLine()), kErrProtocol);
  EXPECT_EQ(client.roundTrip({Verb::kSubmit, "7", 0}), "{\"ok\":true,\"kind\":\"generator\"}");
  server.stop();
}

TEST(ServeLifecycle, SyntaxErrorIsTypedNotFatal) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  client.send({Verb::kSubmit, ")))((", 0});
  client.expectHello();
  EXPECT_EQ(responseCode(client.readLine()), kErrProtocol);
  EXPECT_EQ(client.roundTrip({Verb::kSubmit, "1", 0}), "{\"ok\":true,\"kind\":\"generator\"}");
  server.stop();
}

TEST(ServeLifecycle, OversizedFrameIs902AndCloses) {
  Server server(baseConfig());
  server.start();
  TestClient client(server.port());
  // First classify as a protocol session with a valid frame, then
  // announce an absurd length: the decoder poisons and the server
  // answers 902 before dropping the connection.
  client.send({Verb::kSubmit, "1", 0});
  client.expectHello();
  client.readLine();  // generator ack
  std::string prefix = {'\x7f', '\x00', '\x00', '\x00'};
  client.sendRaw(prefix);
  EXPECT_EQ(responseCode(client.readLine()), kErrFrameTooLarge);
  EXPECT_TRUE(client.atEof());
  EXPECT_TRUE(eventually([&] { return server.liveSessions() == 0; }));
  server.stop();
}

TEST(ServeHttp, HealthzMetricsJsonAnd404OnSamePort) {
  Server server(baseConfig());
  server.start();
  {
    TestClient warm(server.port());
    warm.send({Verb::kSubmit, "1 to 3", 0});
    warm.expectHello();
    warm.readLine();
    warm.roundTrip({Verb::kClose, "", 0});
  }
  auto get = [&](const std::string& path) {
    TestClient http(server.port());
    http.sendRaw("GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
    std::string all, line;
    while (http.tryReadLine(line)) all += line + "\n";
    return all;
  };
  const std::string healthz = get("/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos) << healthz;
  const std::string metrics = get("/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("serve.sessions_opened"), std::string::npos) << metrics.substr(0, 400);
  const std::string metricsJson = get("/metrics.json");
  EXPECT_NE(metricsJson.find("\"counters\""), std::string::npos);
  EXPECT_NE(metricsJson.find("serve.requests"), std::string::npos);
  EXPECT_NE(get("/nope").find("404"), std::string::npos);
  server.stop();
}

TEST(ServeConcurrency, ManySessionsInterleave) {
  Server server(baseConfig());
  server.start();
  constexpr int kThreads = 16;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(server.port());
      client.send({Verb::kSubmit, std::to_string(t) + " to " + std::to_string(t + 9), 0});
      client.expectHello();
      if (client.readLine().find("generator") == std::string::npos) ++failures;
      for (int i = 0; i < kIterations; ++i) {
        const std::string r = client.roundTrip({Verb::kNext, "", 10});
        if (r.find("\"ok\":true") == std::string::npos) ++failures;
        if (client.roundTrip({Verb::kSubmit, "1 to 10", 0}).find("generator") ==
            std::string::npos) {
          ++failures;
        }
      }
      client.roundTrip({Verb::kClose, "", 0});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(eventually([&] { return server.liveSessions() == 0; }));
  server.stop();
}

TEST(ServeQuota, FuelTripSurfacesAs810InFrame) {
  Server::Config config = baseConfig();
  config.session.quotas.maxFuel = 50000;
  Server server(config);
  server.start();
  TestClient client(server.port());
  client.send({Verb::kSubmit, "def spin() { while 1 do 0; }", 0});
  client.expectHello();
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"loaded\"}");
  EXPECT_EQ(client.roundTrip({Verb::kSubmit, "spin()", 0}), "{\"ok\":true,\"kind\":\"generator\"}");
  EXPECT_EQ(responseCode(client.roundTrip({Verb::kNext, "", 1})), 810);
  // The trip is typed containment, not connection death.
  EXPECT_EQ(client.roundTrip({Verb::kClose, "", 0}), "{\"ok\":true,\"kind\":\"bye\"}");
  server.stop();
}

TEST(ServeQuota, HeapTripSurfacesAs811InFrame) {
  Server::Config config = baseConfig();
  config.session.quotas.maxHeapBytes = 1u << 20;
  Server server(config);
  server.start();
  TestClient client(server.port());
  client.send(
      {Verb::kSubmit,
       "def hoard() { local L, i; L := []; every i := 1 to 10000000 do put(L, []); }", 0});
  client.expectHello();
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"loaded\"}");
  client.send({Verb::kSubmit, "hoard()", 0});
  EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"generator\"}");
  EXPECT_EQ(responseCode(client.roundTrip({Verb::kNext, "", 1})), 811);
  server.stop();
}

TEST(ServeAdmission, OverBudgetConnectIsShed815) {
  Server::Config config = baseConfig();
  // The admission gate negotiates committed budgets: only sessions that
  // commit quotas are gated (a limitless governor bypasses admission by
  // design — see runtime/governor.hpp), so serve deployments pair
  // --admission-* with per-session --max-* quotas.
  config.session.quotas.maxHeapBytes = 64u << 20;
  config.admission.maxSessions = 1;
  // The gate is process-global: wait out any admitted session a prior
  // test's teardown is still releasing.
  ASSERT_TRUE(eventually([] { return governor::Admission::global().liveSessions() == 0; }));
  Server server(config);
  server.start();
  TestClient first(server.port());
  first.send({Verb::kSubmit, "1 to 3", 0});
  first.expectHello();
  first.readLine();
  const auto shedBefore = obs::ServeStats::get().sessionsShed.value();
  TestClient second(server.port());
  second.send({Verb::kSubmit, "1 to 3", 0});
  // No hello: the admission gate refused before a session existed.
  EXPECT_EQ(responseCode(second.readLine()), 815);
  EXPECT_TRUE(second.atEof());
  EXPECT_EQ(obs::ServeStats::get().sessionsShed.value(), shedBefore + 1);
  // Slot frees once the first session ends; a new connect is admitted.
  first.roundTrip({Verb::kClose, "", 0});
  EXPECT_TRUE(first.atEof());
  ASSERT_TRUE(eventually([&] { return server.liveSessions() == 0; }));
  TestClient third(server.port());
  third.send({Verb::kSubmit, "1 to 3", 0});
  third.expectHello();
  EXPECT_EQ(third.readLine(), "{\"ok\":true,\"kind\":\"generator\"}");
  server.stop();
}

TEST(ServeSupervision, RunawayRequestIsTerminated816) {
  Server::Config config = baseConfig();
  config.session.requestSoft = std::chrono::milliseconds(100);
  config.session.requestHard = std::chrono::milliseconds(400);
  Server server(config);
  server.start();
  TestClient client(server.port());
  client.send({Verb::kSubmit, "def spin() { while 1 do 0; }", 0});
  client.expectHello();
  client.readLine();
  client.send({Verb::kSubmit, "spin()", 0});
  client.readLine();
  const std::string response = client.roundTrip({Verb::kNext, "", 1});
  EXPECT_EQ(responseCode(response), 816) << response;
  // 816 is the one error a session does not survive: the server closes
  // after the typed response.
  EXPECT_TRUE(client.atEof());
  EXPECT_TRUE(eventually([&] { return server.liveSessions() == 0; }));
  server.stop();
}

TEST(ServeDisconnect, MidStreamHangupCancelsPipeProducer) {
  Server server(baseConfig());
  server.start();
  const auto pipesBefore = obs::PipeStats::get().live.value();
  {
    TestClient client(server.port());
    // A pipe producer with a practically-infinite stream: after NEXT
    // drains a few results, the producer parks on the bounded queue.
    client.send({Verb::kSubmit, "! |> (1 to 1000000000)", 0});
    client.expectHello();
    EXPECT_EQ(client.readLine(), "{\"ok\":true,\"kind\":\"generator\"}");
    const std::string r = client.roundTrip({Verb::kNext, "", 5});
    EXPECT_NE(r.find("\"results\":[\"1\",\"2\",\"3\",\"4\",\"5\"]"), std::string::npos) << r;
    client.hangUp();  // mid-stream: no CANCEL, no CLOSE
  }
  // The disconnect must terminate the session: the producer's parked
  // queue op aborts, the pipe tree unwinds, and the session is reaped.
  EXPECT_TRUE(eventually([&] { return server.liveSessions() == 0; }));
  EXPECT_TRUE(eventually([&] { return obs::PipeStats::get().live.value() <= pipesBefore; }))
      << "leaked pipe: live=" << obs::PipeStats::get().live.value()
      << " baseline=" << pipesBefore;
  const auto disconnects = obs::ServeStats::get().disconnects.value();
  EXPECT_GE(disconnects, 1u);
  server.stop();
}

TEST(ServeShutdown, StopDrainsLiveSessionsAndRestartWorks) {
  Server::Config config = baseConfig();
  Server server(config);
  server.start();
  const std::uint16_t firstPort = server.port();
  TestClient client(server.port());
  client.send({Verb::kSubmit, "! |> (1 to 1000000000)", 0});
  client.expectHello();
  client.readLine();
  client.roundTrip({Verb::kNext, "", 3});
  server.stop();  // live session with a parked producer: must drain
  EXPECT_TRUE(client.atEof());
  EXPECT_EQ(server.liveSessions(), 0u);
  // The same Server object can start again (fresh ephemeral port).
  server.start();
  TestClient again(server.port());
  again.send({Verb::kSubmit, "99", 0});
  again.expectHello();
  EXPECT_EQ(again.readLine(), "{\"ok\":true,\"kind\":\"generator\"}");
  server.stop();
  (void)firstPort;
}

}  // namespace
}  // namespace congen::serve

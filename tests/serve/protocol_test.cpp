// protocol_test.cpp — unit tests for the pure wire-protocol layer
// (framing, request grammar, HTTP sniffing, response rendering). No
// sockets: everything here is byte-in/byte-out, the same property the
// golden transcripts and the fuzz harness lean on.
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.hpp"

namespace congen::serve {
namespace {

TEST(FrameCodec, RoundTripsThroughDecoder) {
  FrameDecoder decoder;
  decoder.feed(encodeFrame({Verb::kSubmit, "1 to 3", 0}));
  decoder.feed(encodeFrame({Verb::kNext, "", 10}));
  auto first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "SUBMIT\n1 to 3");
  auto second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "NEXT 10");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.pendingBytes(), 0u);
}

TEST(FrameCodec, ReassemblesByteAtATime) {
  const std::string frame = encodeFrame({Verb::kSubmit, "every 1 to 10", 0});
  FrameDecoder decoder;
  for (char c : frame) decoder.feed(std::string_view(&c, 1));
  auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "SUBMIT\nevery 1 to 10");
}

TEST(FrameCodec, EmptyPayloadFrameIsDelivered) {
  FrameDecoder decoder;
  decoder.feed(encodePayload(""));
  auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(FrameCodec, OversizedLengthPoisonsPermanently) {
  FrameDecoder decoder(64);
  decoder.feed(encodePayload(std::string(65, 'x')));
  EXPECT_TRUE(decoder.error());
  EXPECT_FALSE(decoder.next().has_value());
  // Feeding a now-valid frame cannot resync a poisoned stream.
  decoder.feed(encodePayload("CLOSE"));
  EXPECT_TRUE(decoder.error());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(RequestGrammar, ParsesEveryVerb) {
  std::string error;
  auto submit = parseRequest("SUBMIT\n1 to 3", error);
  ASSERT_TRUE(submit.has_value());
  EXPECT_EQ(submit->verb, Verb::kSubmit);
  EXPECT_EQ(submit->body, "1 to 3");
  auto next = parseRequest("NEXT 17", error);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->verb, Verb::kNext);
  EXPECT_EQ(next->n, 17u);
  EXPECT_EQ(parseRequest("CANCEL", error)->verb, Verb::kCancel);
  EXPECT_EQ(parseRequest("CLOSE", error)->verb, Verb::kClose);
}

TEST(RequestGrammar, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parseRequest("", error).has_value());
  EXPECT_FALSE(parseRequest("SUBMIT", error).has_value());       // no body
  EXPECT_FALSE(parseRequest("SUBMIT\n", error).has_value());     // empty body
  EXPECT_FALSE(parseRequest("NEXT ", error).has_value());        // no count
  EXPECT_FALSE(parseRequest("NEXT x", error).has_value());       // not a number
  EXPECT_FALSE(parseRequest("NEXT 0", error).has_value());       // not positive
  EXPECT_FALSE(parseRequest("NEXT 12x", error).has_value());     // trailing junk
  EXPECT_FALSE(parseRequest("next 1", error).has_value());       // verbs are upper-case
  EXPECT_FALSE(parseRequest("EXPLODE", error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(RequestGrammar, ClampsNextToMaxBatch) {
  std::string error;
  // A count past the clamp — including ones that would overflow u64 —
  // parses as the maximum batch, with every digit still validated.
  auto big = parseRequest("NEXT 99999999999999999999999", error);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->n, kMaxNextBatch);
  EXPECT_FALSE(parseRequest("NEXT 99999999999999999999999x", error).has_value());
}

TEST(HttpSniff, DistinguishesHttpFromFrames) {
  EXPECT_TRUE(looksLikeHttp("GET /metrics HTTP/1.1"));
  EXPECT_TRUE(looksLikeHttp("HEAD /healthz"));
  EXPECT_TRUE(looksLikeHttp("POST /x"));
  EXPECT_FALSE(looksLikeHttp("GET"));  // undecidable until 4 bytes
  EXPECT_FALSE(looksLikeHttp(std::string("\x00\x00\x00\x05CLOSE", 9)));
  EXPECT_FALSE(looksLikeHttp("PUT /x"));  // unsupported method: not HTTP mode
}

TEST(Responses, RenderStableJson) {
  EXPECT_EQ(makeHello(), "{\"ok\":true,\"event\":\"hello\",\"proto\":1}\n");
  EXPECT_EQ(makeOk("bye"), "{\"ok\":true,\"kind\":\"bye\"}\n");
  EXPECT_EQ(makeResults({"1", "2"}, false), "{\"ok\":true,\"done\":false,\"results\":[\"1\",\"2\"]}\n");
  EXPECT_EQ(makeResults({}, true), "{\"ok\":true,\"done\":true,\"results\":[]}\n");
  EXPECT_EQ(makeError(810, "quota exceeded"),
            "{\"ok\":false,\"code\":810,\"error\":\"quota exceeded\"}\n");
}

TEST(Responses, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  // An Icon string image ("abc") travels escaped but intact.
  EXPECT_EQ(makeResults({"\"abc\""}, true),
            "{\"ok\":true,\"done\":true,\"results\":[\"\\\"abc\\\"\"]}\n");
}

}  // namespace
}  // namespace congen::serve

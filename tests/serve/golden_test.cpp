// golden_test.cpp — protocol conformance via golden transcripts.
//
// Each tests/serve/golden/*.txt is a recorded conversation with the
// daemon: request payloads and the exact response lines the server must
// produce, in order. The test replays the requests over a real socket
// against an in-process Server and compares every response line
// byte-for-byte — the whole response surface (hello, acks, results,
// typed errors) is pinned as reviewable text.
//
// Transcript format (line-oriented):
//   --- request          the following lines (joined with '\n') are one
//                        request payload, framed and sent verbatim
//   --- response         the following single line is the expected
//                        response, byte-for-byte without the newline
// The first blocks may be responses-after-the-first-request: the server
// speaks hello only once the client's first bytes classify the
// connection, so every transcript starts with a request.
//
// To regenerate after an intentional protocol change:
//   ./serve_golden_test --update-golden   (or CONGEN_UPDATE_GOLDEN=1)
// then review and commit the .txt diffs.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.hpp"
#include "serve_client.hpp"

namespace congen::serve {
namespace {

bool g_updateGolden = false;

struct TranscriptStep {
  bool isRequest = false;
  std::string text;  // request: payload; response: expected line
};

std::string goldenPath(const std::string& name) {
  return std::string(CONGEN_SOURCE_DIR) + "/tests/serve/golden/" + name + ".txt";
}

std::vector<TranscriptStep> parseTranscript(const std::string& text) {
  std::vector<TranscriptStep> steps;
  std::istringstream in(text);
  std::string line;
  TranscriptStep* current = nullptr;
  bool firstLineOfBlock = true;
  while (std::getline(in, line)) {
    if (line == "--- request") {
      steps.push_back({true, ""});
      current = &steps.back();
      firstLineOfBlock = true;
      continue;
    }
    if (line == "--- response") {
      steps.push_back({false, ""});
      current = &steps.back();
      firstLineOfBlock = true;
      continue;
    }
    if (current == nullptr) continue;  // leading comments/blank lines
    if (!firstLineOfBlock) current->text += '\n';
    current->text += line;
    firstLineOfBlock = false;
  }
  return steps;
}

std::string renderTranscript(const std::vector<TranscriptStep>& steps) {
  std::string out;
  for (const auto& step : steps) {
    out += step.isRequest ? "--- request\n" : "--- response\n";
    out += step.text;
    out += '\n';
  }
  return out;
}

void playTranscript(const std::string& name, Server::Config config = {}) {
  const std::string path = goldenPath(name);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden transcript " << path;
  std::ostringstream raw;
  raw << in.rdbuf();
  std::vector<TranscriptStep> steps = parseTranscript(raw.str());
  ASSERT_FALSE(steps.empty()) << path << " holds no steps";
  ASSERT_TRUE(steps.front().isRequest)
      << path << " must start with a request (the client speaks first)";

  config.port = 0;
  Server server(config);
  server.start();
  {
    testing::TestClient client(server.port());
    for (auto& step : steps) {
      if (step.isRequest) {
        client.sendPayload(step.text);
        continue;
      }
      const std::string actual = client.readLine();
      if (g_updateGolden) {
        step.text = actual;
      } else {
        EXPECT_EQ(actual, step.text)
            << "transcript '" << name
            << "' diverged. If intentional, regenerate with: serve_golden_test --update-golden";
      }
    }
  }
  server.stop();

  if (g_updateGolden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << renderTranscript(steps);
  }
}

TEST(ServeGolden, Lifecycle) { playTranscript("lifecycle"); }

TEST(ServeGolden, PipelinedBatch) { playTranscript("pipelined_batch"); }

TEST(ServeGolden, ProtocolErrors) { playTranscript("protocol_errors"); }

TEST(ServeGolden, QuotaTrip) {
  Server::Config config;
  config.session.quotas.maxFuel = 50000;
  playTranscript("quota_trip", config);
}

}  // namespace
}  // namespace congen::serve

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") congen::serve::g_updateGolden = true;
  }
  if (std::getenv("CONGEN_UPDATE_GOLDEN") != nullptr) congen::serve::g_updateGolden = true;
  return RUN_ALL_TESTS();
}

// serve_client.hpp — blocking test client for the congen-serve protocol.
//
// Deliberately dumber than the daemon's event loop: connect, write
// frames, read newline-terminated JSON responses. The server speaks
// hello only after the client's first bytes classify the connection, so
// tests either pipeline their first frame and then expect the hello in
// front of the first response (expectHello), or poke raw bytes for the
// malformed-input paths.
#pragma once

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace congen::serve::testing {

class TestClient {
 public:
  explicit TestClient(std::uint16_t port, const std::string& host = "127.0.0.1")
      : sock_(connectTo(host, port)) {}

  void send(const Request& request) { writeAll(sock_, encodeFrame(request)); }
  void sendRaw(std::string_view bytes) { writeAll(sock_, std::string(bytes)); }
  void sendPayload(std::string_view payload) { writeAll(sock_, encodePayload(payload)); }

  /// Next newline-terminated response (without the newline); fails the
  /// test on EOF.
  std::string readLine() {
    std::string line;
    if (!tryReadLine(line)) ADD_FAILURE() << "unexpected EOF from server";
    return line;
  }

  bool tryReadLine(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      if (!readSome(sock_, buf_)) return false;
    }
  }

  /// True when the connection yields EOF (drains any buffered bytes).
  bool atEof() {
    std::string line;
    while (tryReadLine(line)) {
    }
    return true;
  }

  void expectHello() {
    const std::string line = readLine();
    EXPECT_NE(line.find("\"event\":\"hello\""), std::string::npos) << line;
  }

  /// Send one request and read one response (hello must already have
  /// been consumed).
  std::string roundTrip(const Request& request) {
    send(request);
    return readLine();
  }

  Socket& socket() { return sock_; }
  /// Abrupt teardown: close the descriptor mid-stream.
  void hangUp() { sock_.close(); }

 private:
  Socket sock_;
  std::string buf_;
};

}  // namespace congen::serve::testing

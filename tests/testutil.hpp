// testutil.hpp — shared helpers for the kernel/interp test suites.
#pragma once

#include <string>
#include <vector>

#include "kernel/basic.hpp"
#include "kernel/compose.hpp"
#include "kernel/control.hpp"
#include "kernel/gen.hpp"
#include "kernel/ops.hpp"
#include "runtime/collections.hpp"

namespace congen::test {

/// Drain a generator into int64 values (errors on non-integers).
inline std::vector<std::int64_t> ints(const GenPtr& g) {
  std::vector<std::int64_t> out;
  while (auto v = g->nextValue()) out.push_back(v->requireInt64("test value"));
  return out;
}

/// Drain into display strings.
inline std::vector<std::string> strs(const GenPtr& g) {
  std::vector<std::string> out;
  while (auto v = g->nextValue()) out.push_back(v->toDisplayString());
  return out;
}

/// Constant singleton generator over an int.
inline GenPtr ci(std::int64_t v) { return ConstGen::create(Value::integer(v)); }

/// i to j range generator.
inline GenPtr range(std::int64_t from, std::int64_t to) {
  return makeToByGen(ci(from), ci(to), nullptr);
}

/// Values generator from ints.
inline GenPtr vals(std::vector<std::int64_t> xs) {
  std::vector<Value> out;
  out.reserve(xs.size());
  for (const auto x : xs) out.push_back(Value::integer(x));
  return ValuesGen::create(std::move(out));
}

/// Icon list value from ints.
inline Value listOf(std::vector<std::int64_t> xs) {
  auto l = ListImpl::create();
  for (const auto x : xs) l->put(Value::integer(x));
  return Value::list(std::move(l));
}

}  // namespace congen::test

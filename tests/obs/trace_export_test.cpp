// trace_export_test.cpp — the Chrome-trace sink and its kernel-hook
// adapter: structural validity of the emitted JSON (parseable, matched
// B/E pairs, per-thread monotonic timestamps) both for hand-emitted
// events and for a full example script run in-process.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "interp/interpreter.hpp"
#include "obs/trace_adapter.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/collections.hpp"

#include "json_util.hpp"

namespace congen {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Structural validation shared by every test: the document parses, each
/// event carries the required fields, timestamps are non-decreasing per
/// thread track, and every 'E' closes the innermost open 'B' of the same
/// name on its track. Unclosed 'B's may remain (the buffer is a snapshot
/// of a possibly-live process); returns them per tid so callers that
/// know the process is quiescent can assert emptiness.
std::map<std::int64_t, std::vector<std::string>> validateTrace(const testjson::Json& doc) {
  const testjson::Json& events = doc.at("traceEvents");
  EXPECT_TRUE(events.isArray());
  std::map<std::int64_t, std::vector<std::string>> stacks;
  std::map<std::int64_t, std::int64_t> lastTs;
  for (const auto& ep : events.items) {
    const testjson::Json& e = *ep;
    const std::string ph = e.at("ph").str;
    const std::string name = e.at("name").str;
    EXPECT_FALSE(name.empty());
    EXPECT_FALSE(e.at("cat").str.empty());
    EXPECT_EQ(e.at("pid").asInt(), 1);
    const std::int64_t tid = e.at("tid").asInt();
    EXPECT_GE(tid, 1) << "tids are small dense integers from 1";
    const std::int64_t ts = e.at("ts").asInt();
    EXPECT_GE(ts, 0);
    const auto it = lastTs.find(tid);
    if (it != lastTs.end()) {
      EXPECT_GE(ts, it->second) << "per-track timestamps must be monotonic";
    }
    lastTs[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      auto& stack = stacks[tid];
      EXPECT_FALSE(stack.empty()) << "'E' for " << name << " with no open span on tid " << tid;
      if (!stack.empty()) {
        EXPECT_EQ(stack.back(), name) << "'E' must close the innermost open 'B'";
        stack.pop_back();
      }
    } else {
      EXPECT_EQ(ph, "i") << "only B/E/i events are emitted";
      EXPECT_EQ(e.at("s").str, "t") << "instants are thread-scoped";
    }
  }
  return stacks;
}

TEST(TraceSink, DisabledByDefaultAndCheapToQuery) {
  EXPECT_FALSE(obs::traceEnabled());
  // Emitting while disabled is a no-op, not an error.
  obs::traceBegin("x", "test");
  obs::traceEnd("x", "test");
  EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST(TraceSink, HandEmittedSpansRenderAsBalancedTracks) {
  obs::installTraceSink();
  obs::traceBegin("outer", "test");
  obs::traceBegin("inner", "test");
  obs::traceInstant("tick", "test", R"({"n": 1})");
  obs::traceEnd("inner", "test", R"({"result": "ok"})");
  std::thread other([] {
    obs::TraceSpan span("worker", "test");
  });
  other.join();
  obs::traceEnd("outer", "test");

  std::ostringstream os;
  obs::writeTraceJson(os);
  obs::removeTraceSink();

  const auto doc = testjson::parse(os.str());
  const auto stacks = validateTrace(doc);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left an unclosed span";
  }
  const testjson::Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.items.size(), 7u);  // 3 B + 3 E + 1 instant
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  // Two distinct tracks: this thread and the helper.
  std::int64_t mainTid = events.items.front()->at("tid").asInt();
  bool sawOtherTid = false;
  for (const auto& e : events.items) sawOtherTid |= e->at("tid").asInt() != mainTid;
  EXPECT_TRUE(sawOtherTid);
  // The instant carries its args object through verbatim.
  bool sawInstant = false;
  for (const auto& e : events.items) {
    if (e->at("ph").str == "i") {
      sawInstant = true;
      EXPECT_EQ(e->at("args").at("n").asInt(), 1);
    }
  }
  EXPECT_TRUE(sawInstant);
}

TEST(TraceSink, ReinstallClearsThePreviousBuffer) {
  obs::installTraceSink();
  obs::traceInstant("old", "test");
  EXPECT_EQ(obs::traceEventCount(), 1u);
  obs::installTraceSink();
  EXPECT_EQ(obs::traceEventCount(), 0u) << "install restarts collection";
  obs::removeTraceSink();
  EXPECT_FALSE(obs::traceEnabled());
}

TEST(TraceExport, TimeoutScriptProducesAWellFormedChromeTrace) {
  // The acceptance-criteria script: run examples/scripts/timeout.jn
  // in-process with the kernel hook feeding the Chrome sink, then
  // validate the rendered document structurally.
  obs::installChromeTraceHook();
  {
    interp::Interpreter interp;
    interp.load(readFile(std::string(CONGEN_SOURCE_DIR) + "/examples/scripts/timeout.jn"));
    auto args = ListImpl::create();
    interp.call("main", {Value::list(args)})->last();
    // Interpreter destruction closes every pipe; producers retire on the
    // global pool within one queue operation.
  }
  // Producer tasks finish asynchronously; wait for the event stream to
  // quiesce before snapshotting so their closing 'E' events are present.
  std::size_t last = obs::traceEventCount();
  for (int spins = 0; spins < 100; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::size_t now = obs::traceEventCount();
    if (now == last && spins >= 2) break;
    last = now;
  }

  std::ostringstream os;
  obs::writeTraceJson(os);
  obs::removeChromeTraceHook();

  const auto doc = testjson::parse(os.str());
  const auto stacks = validateTrace(doc);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left " << stack.size() << " unclosed spans";
  }
  const testjson::Json& events = doc.at("traceEvents");
  EXPECT_GT(events.items.size(), 20u) << "a real run produces a dense trace";
  EXPECT_EQ(doc.at("otherData").at("droppedEvents").asInt(), 0);

  // The trace interleaves consumer-side generator spans with producer
  // stage spans on separate tracks.
  bool sawProducerSpan = false;
  bool sawGenSpan = false;
  std::int64_t producerTid = 0;
  std::int64_t genTid = 0;
  for (const auto& e : events.items) {
    if (e->at("name").str == "pipe.producer") {
      sawProducerSpan = true;
      producerTid = e->at("tid").asInt();
    }
    if (e->at("cat").str == "gen" && e->at("ph").str == "B") {
      sawGenSpan = true;
      if (genTid == 0) genTid = e->at("tid").asInt();
    }
  }
  EXPECT_TRUE(sawProducerSpan) << "pipe stage spans must be present";
  EXPECT_TRUE(sawGenSpan) << "kernel next() spans must be present";
  EXPECT_NE(producerTid, genTid) << "producer and consumer run on distinct tracks";
}

}  // namespace
}  // namespace congen

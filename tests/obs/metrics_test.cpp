// metrics_test.cpp — the metrics registry: striped primitives, registry
// semantics, snapshot consistency, and the stability of the JSON schema
// (`congen-run --metrics-json` consumers parse it; the golden file under
// tests/obs/golden/ is the contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "concur/blocking_queue.hpp"
#include "interp/interpreter.hpp"
#include "kernel/arena.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_stats.hpp"
#include "runtime/collections.hpp"

#include "json_util.hpp"

namespace congen {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every test leaves the flag the way it found it (other suites in this
/// binary assume the seed default: disabled).
class MetricsFlagGuard {
 public:
  MetricsFlagGuard() : was_(obs::metricsEnabled()) {}
  ~MetricsFlagGuard() {
    if (was_) {
      obs::enableMetrics();
    } else {
      obs::disableMetrics();
    }
  }

 private:
  bool was_;
};

TEST(MetricsPrimitives, CounterSumsConcurrentStripedAdds) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsPrimitives, GaugeAddAndSubOnDifferentThreadsCancelExactly) {
  obs::Gauge g;
  std::thread up([&g] {
    for (int i = 0; i < 5000; ++i) g.add(2);
  });
  std::thread down([&g] {
    for (int i = 0; i < 5000; ++i) g.sub(1);
  });
  up.join();
  down.join();
  EXPECT_EQ(g.value(), 5000);
  std::thread rest([&g] { g.sub(5000); });
  rest.join();
  EXPECT_EQ(g.value(), 0) << "stripes must cancel across threads";
}

TEST(MetricsPrimitives, HistogramBucketsBySearchingInclusiveUpperBounds) {
  obs::Histogram h({1, 2, 4});
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 5 + 1000);
  const auto buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(buckets[0], 2u);      // 0, 1
  EXPECT_EQ(buckets[1], 1u);      // 2
  EXPECT_EQ(buckets[2], 2u);      // 3, 4
  EXPECT_EQ(buckets[3], 2u);      // 5, 1000 -> overflow
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  obs::Registry r;
  obs::Counter& a = r.counter("x.count");
  a.add(7);
  EXPECT_EQ(&r.counter("x.count"), &a) << "same name, same counter";
  EXPECT_EQ(r.counter("x.count").value(), 7u);
  obs::Histogram& h = r.histogram("x.hist", {1, 2});
  EXPECT_EQ(&r.histogram("x.hist", {99}), &h) << "bounds apply on first registration only";
  EXPECT_EQ(h.bounds(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndLookupsMissAsZero) {
  obs::Registry r;
  r.counter("b").add(2);
  r.counter("a").add(1);
  r.gauge("g").add(-3);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counterValue("b"), 2u);
  EXPECT_EQ(snap.gaugeValue("g"), -3);
  EXPECT_EQ(snap.counterValue("nope"), 0u);
  EXPECT_EQ(snap.gaugeValue("nope"), 0);
  EXPECT_EQ(snap.histogram("nope"), nullptr);
}

TEST(MetricsRegistry, CollectorsRunBeforeEverySnapshotAndMayRegister) {
  obs::Registry r;
  int runs = 0;
  r.addCollector([&r, &runs] {
    ++runs;
    // Collectors may find-or-create instruments (the arena's collector
    // does exactly this on its first run) and must only add deltas.
    r.counter("collected.count").add(1);
  });
  EXPECT_EQ(runs, 0) << "registration alone must not invoke the collector";
  auto snap = r.snapshot();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(snap.counterValue("collected.count"), 1u)
      << "collector output is visible in the same snapshot that ran it";
  snap = r.snapshot();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(snap.counterValue("collected.count"), 2u);
}

TEST(MetricsRegistry, EnableDisableTogglesTheProcessFlag) {
  MetricsFlagGuard guard;
  obs::disableMetrics();
  EXPECT_FALSE(obs::metricsEnabled());
  obs::enableMetrics();
  EXPECT_TRUE(obs::metricsEnabled());
  obs::disableMetrics();
  EXPECT_FALSE(obs::metricsEnabled());
}

TEST(MetricsJson, GoldenDocumentIsStable) {
  // A private registry with fixed values renders byte-identically to the
  // committed golden file — the --metrics-json schema contract.
  obs::Registry r;
  r.counter("demo.items").add(3);
  r.counter("demo.zeta");
  r.gauge("demo.depth").sub(2);
  obs::Histogram& h = r.histogram("demo.sizes", {1, 2, 4});
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 100ull}) h.record(v);

  std::ostringstream os;
  r.snapshot().writeJson(os);
  EXPECT_EQ(os.str(), readFile(std::string(CONGEN_SOURCE_DIR) + "/tests/obs/golden/metrics.json"));
}

TEST(MetricsJson, DocumentParsesWithRequiredSchemaFields) {
  obs::Registry r;
  r.counter("c\"quoted\"").add(1);  // name escaping must survive a round-trip
  r.gauge("g").add(-5);
  r.histogram("h", {1, 8}).record(3);

  std::ostringstream os;
  r.snapshot().writeJson(os);
  const auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.at("schema").str, "congen-metrics");
  EXPECT_EQ(doc.at("version").asInt(), 1);
  EXPECT_EQ(doc.at("counters").at("c\"quoted\"").asInt(), 1);
  EXPECT_EQ(doc.at("gauges").at("g").asInt(), -5);

  const testjson::Json& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("count").asInt(), 1);
  EXPECT_EQ(h.at("sum").asInt(), 3);
  const testjson::Json& buckets = h.at("buckets");
  ASSERT_TRUE(buckets.isArray());
  ASSERT_EQ(buckets.items.size(), 3u);  // two finite bounds + overflow
  std::int64_t prev = -1;
  for (std::size_t i = 0; i + 1 < buckets.items.size(); ++i) {
    const testjson::Json& le = buckets.items[i]->at("le");
    ASSERT_TRUE(le.isNumber()) << "finite bounds are numbers";
    EXPECT_GT(le.asInt(), prev) << "bounds strictly increase";
    prev = le.asInt();
  }
  EXPECT_EQ(buckets.items.back()->at("le").str, "inf") << "overflow bucket is last";
}

TEST(MetricsJson, EmptyRegistryRendersEmptySectionsThatStillParse) {
  obs::Registry r;
  std::ostringstream os;
  r.snapshot().writeJson(os);
  const auto doc = testjson::parse(os.str());
  EXPECT_TRUE(doc.at("counters").members.empty());
  EXPECT_TRUE(doc.at("gauges").members.empty());
  EXPECT_TRUE(doc.at("histograms").members.empty());
}

TEST(MetricsRuntime, QueueOperationsConserveElements) {
  MetricsFlagGuard guard;
  obs::enableMetrics();
  auto& s = obs::QueueStats::get();
  const auto put0 = s.putElements.value() + s.putBatchElements.value();
  const auto take0 = s.takeElements.value() + s.takeBatchElements.value();
  const auto dropped0 = s.droppedOnClose.value();
  const auto depth0 = s.depth.value();

  {
    BlockingQueue<int> q(8);
    q.put(1);
    q.put(2);
    (void)q.tryPut(3);
    std::vector<int> bulk{4, 5, 6};
    q.putAll(bulk);
    (void)q.take();
    (void)q.tryTake();
    (void)q.takeUpTo(2);
    // two elements still queued at destruction -> dropped_on_close
  }

  const auto put = s.putElements.value() + s.putBatchElements.value() - put0;
  const auto take = s.takeElements.value() + s.takeBatchElements.value() - take0;
  const auto dropped = s.droppedOnClose.value() - dropped0;
  const auto depth = s.depth.value() - depth0;
  EXPECT_EQ(put, 6u);
  EXPECT_EQ(take, 4u);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(depth, 0) << "destruction must return the depth gauge to its baseline";
  EXPECT_EQ(put, take + dropped + static_cast<std::uint64_t>(depth));
}

TEST(MetricsRuntime, BatchSizeHistogramSumMatchesBulkElements) {
  MetricsFlagGuard guard;
  obs::enableMetrics();
  auto& s = obs::QueueStats::get();
  const auto sum0 = s.putBatchSize.sum();
  const auto bulk0 = s.putBatchElements.value();

  BlockingQueue<int> q(16);
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{4, 5};
  q.putAll(a);
  q.putAll(b);
  (void)q.takeUpTo(16);

  EXPECT_EQ(s.putBatchSize.sum() - sum0, 5u);
  EXPECT_EQ(s.putBatchElements.value() - bulk0, 5u);
}

#ifndef CONGEN_ARENA_PASSTHROUGH
TEST(MetricsRuntime, ArenaTalliesFeedRegistryCountersAtSnapshot) {
  // Deliberately no MetricsFlagGuard/enableMetrics: arena counting is
  // branch-free and runs regardless of the process flag (§ INTERNALS 10).
  const arena::Stats before = arena::stats();
  void* p = arena::allocate(64);
  arena::deallocate(p, 64);  // after the pop/miss above the bin has room
  void* q = arena::allocate(64);  // must pop the block just parked: a hit
  arena::deallocate(q, 64);
  const arena::Stats after = arena::stats();
  EXPECT_EQ((after.hits + after.misses) - (before.hits + before.misses), 2u);
  EXPECT_EQ(after.returns - before.returns, 2u);
  EXPECT_GE(after.hits - before.hits, 1u);

  // The collector bridges tallies into the registry counters; it runs at
  // the head of snapshot(), so the snapshot already reflects `after`.
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_GE(snap.counterValue("kernel.arena.hits"), after.hits);
  EXPECT_GE(snap.counterValue("kernel.arena.misses"), after.misses);
  EXPECT_GE(snap.counterValue("kernel.arena.returns"), after.returns);
}
#endif

TEST(MetricsBuiltins, MetricsTableReflectsTheRegistry) {
  MetricsFlagGuard guard;
  // Resolve the queue handles so the names exist even when this test
  // runs alone in a fresh process (registration happens on first use).
  (void)obs::QueueStats::get();
  interp::Interpreter interp;
  interp.evalOne("metricson()");
  EXPECT_TRUE(obs::metricsEnabled());
  auto t = interp.evalOne("metrics()");
  ASSERT_TRUE(t && t->isTable());
  const Value v = t->table()->lookup(Value::string("queue.put.elements"));
  EXPECT_TRUE(v.isInteger());
  interp.evalOne("metricsoff()");
  EXPECT_FALSE(obs::metricsEnabled());
}

}  // namespace
}  // namespace congen

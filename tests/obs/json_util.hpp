// json_util.hpp — a minimal JSON reader for the observability tests.
//
// The repo deliberately has no JSON dependency; the metrics/trace
// emitters build their documents by hand. These tests therefore need an
// independent parser to prove the output is *actually* well-formed JSON
// (not merely the same string the emitter produced). Parses the full
// JSON grammar the emitters can produce: objects (insertion order
// preserved), arrays, strings with escapes, integers/doubles, booleans,
// null. Throws std::runtime_error with an offset on malformed input.
#pragma once

#include <cctype>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace congen::testjson {

struct Json;
using JsonPtr = std::shared_ptr<Json>;

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonPtr> items;                            // Array
  std::vector<std::pair<std::string, JsonPtr>> members;  // Object, in document order

  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind == Kind::Array; }
  [[nodiscard]] bool isString() const { return kind == Kind::String; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::Number; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return v.get();
    }
    return nullptr;
  }

  /// Object member lookup that throws on absence (test assertions read
  /// better when the failure names the missing key).
  [[nodiscard]] const Json& at(const std::string& key) const {
    const Json* v = find(key);
    if (v == nullptr) throw std::runtime_error("json: missing key '" + key + "'");
    return *v;
  }

  [[nodiscard]] std::int64_t asInt() const {
    if (kind != Kind::Number) throw std::runtime_error("json: not a number");
    return static_cast<std::int64_t>(number);
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skipWs();
    if (i_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(i_));
  }

  void skipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }

  Json value() {
    skipWs();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.kind = Json::Kind::String;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.kind = Json::Kind::Bool;
        if (consumeLiteral("true")) {
          v.boolean = true;
        } else if (consumeLiteral("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consumeLiteral("null")) fail("bad literal");
        return Json{};
      }
      default: return numberValue();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::Object;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++i_;
      return v;
    }
    for (;;) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      v.members.emplace_back(std::move(key), std::make_shared<Json>(value()));
      skipWs();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::Array;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++i_;
      return v;
    }
    for (;;) {
      v.items.push_back(std::make_shared<Json>(value()));
      skipWs();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair support: the emitters only
          // \u-escape control characters, which are all < 0x80).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json numberValue() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' ||
                              s_[i_] == '-')) {
      ++i_;
    }
    if (i_ == start || (i_ == start + 1 && s_[start] == '-')) fail("bad number");
    Json v;
    v.kind = Json::Kind::Number;
    try {
      v.number = std::stod(s_.substr(start, i_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace detail

inline Json parse(const std::string& text) { return detail::Parser(text).parse(); }

}  // namespace congen::testjson

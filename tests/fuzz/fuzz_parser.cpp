// fuzz_parser.cpp — libFuzzer harness for the Junicon parser.
//
// Both grammar entry points run over every input: a buffer that parses
// as neither a program nor an expression must fail with SyntaxError in
// both, never crash. BigInt literal construction can legitimately throw
// std::invalid_argument/out_of_range through the parser for unhinged
// radix literals; those are tolerated here, anything else is a finding.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"

namespace {

void tryParse(congen::ast::NodePtr (*entry)(std::string_view), std::string_view source) {
  try {
    const auto tree = entry(source);
    (void)tree;
  } catch (const congen::frontend::SyntaxError&) {
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view source(reinterpret_cast<const char*>(data), size);
  tryParse(&congen::frontend::parseProgram, source);
  tryParse(&congen::frontend::parseExpression, source);
  return 0;
}

// fuzz_serve_frame.cpp — libFuzzer harness for the serve wire layer.
//
// The input buffer is treated as hostile bytes off a socket. Three
// passes per input:
//   1. FrameDecoder fed the whole buffer at once, every completed
//      payload pushed through parseRequest.
//   2. The same bytes fed one at a time — the decoder's length-prefix
//      reassembly must reach the exact same payloads regardless of
//      read-boundary placement.
//   3. The raw buffer parsed directly as a request payload (the decoder
//      already bounds payload size, so this models a maximal frame).
// None of these may crash or trip UB; parseRequest reports failures via
// nullopt + message, the decoder via its sticky error() poison. A
// divergence between pass 1 and pass 2 is a framing bug even when
// nothing crashes.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace {

// Small cap so adversarial length prefixes exercise the poison path
// instead of making the decoder buffer gigabytes.
constexpr std::size_t kFuzzMaxPayload = 1 << 16;

std::vector<std::string> drain(congen::serve::FrameDecoder& decoder) {
  std::vector<std::string> payloads;
  while (auto payload = decoder.next()) payloads.push_back(*payload);
  return payloads;
}

void parseAll(const std::vector<std::string>& payloads) {
  for (const auto& payload : payloads) {
    std::string error;
    const auto request = congen::serve::parseRequest(payload, error);
    if (!request && error.empty()) __builtin_trap();  // failure must carry a reason
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  congen::serve::FrameDecoder whole(kFuzzMaxPayload);
  whole.feed(bytes);
  const auto wholePayloads = drain(whole);
  parseAll(wholePayloads);

  congen::serve::FrameDecoder trickle(kFuzzMaxPayload);
  std::vector<std::string> tricklePayloads;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    trickle.feed(bytes.substr(i, 1));
    while (auto payload = trickle.next()) tricklePayloads.push_back(*payload);
  }
  if (whole.error() != trickle.error()) __builtin_trap();
  if (wholePayloads != tricklePayloads) __builtin_trap();

  std::string error;
  (void)congen::serve::parseRequest(bytes, error);
  return 0;
}

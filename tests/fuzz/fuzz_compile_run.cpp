// fuzz_compile_run.cpp — libFuzzer harness for the whole VM pipeline:
// source → parse → normalize → chunk-compile → bounded-step VM run.
//
// Anything the parser accepts must compile and execute without crashing:
// run-time faults must surface as IconError (including 316, the
// vmStepLimit trip that bounds runaway programs), syntax faults as
// SyntaxError, and absurd literals as the BigInt constructor's
// std::invalid_argument/out_of_range. Output is swallowed — generated
// programs love write() — and the result drain is capped so a prolific
// generator terminates the iteration quickly.
//
// Tree-compiled escape subtrees (scanning, case, co-expressions) run
// un-metered, so a pathological input can still spin inside one; the
// libFuzzer -timeout flag (or the ctest replay timeout) is the backstop
// there, exactly as for the other harnesses.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace {

/// Redirect std::cout to a discarding buffer for the current scope.
class SwallowStdout {
 public:
  SwallowStdout() : old_(std::cout.rdbuf(sink_.rdbuf())) {}
  ~SwallowStdout() { std::cout.rdbuf(old_); }

 private:
  std::ostringstream sink_;
  std::streambuf* old_;
};

void compileAndRun(const std::string& source) {
  using namespace congen;
  SwallowStdout quiet;
  try {
    interp::Interpreter::Options opts;
    opts.backend = interp::Backend::kVm;
    opts.vmStepLimit = 200000;  // IconError 316 bounds runaway chunks
    interp::Interpreter interp{opts};
    interp.load(source);  // compiles every body; runs top-level stmts
    auto gen = interp.call("main", {Value::list(ListImpl::create())});
    for (int n = 0; n < 1000 && gen->nextValue(); ++n) {
    }
  } catch (const frontend::SyntaxError&) {
  } catch (const IconError&) {
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  compileAndRun(std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}

// fuzz_compile_run.cpp — libFuzzer harness for the whole VM pipeline:
// source → parse → normalize → chunk-compile → bounded-step VM run.
//
// Anything the parser accepts must compile and execute without crashing:
// run-time faults must surface as IconError (including 810, the
// evaluation-fuel trip that bounds runaway programs — vmStepLimit is now
// an alias for the governor's unified fuel budget), syntax faults as
// SyntaxError, and absurd literals as the BigInt constructor's
// std::invalid_argument/out_of_range. Output is swallowed — generated
// programs love write() — and the result drain is capped so a prolific
// generator terminates the iteration quickly.
//
// Unlike the retired VM-only step limit, the fuel budget also meters the
// tree-compiled escape subtrees (scanning, case, co-expressions) — every
// Gen::next charges the same counter — so a pathological input spinning
// inside one now trips 810 too; the libFuzzer -timeout flag (or the
// ctest replay timeout) remains the backstop of last resort.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "runtime/collections.hpp"
#include "runtime/error.hpp"

namespace {

/// Redirect std::cout to a discarding buffer for the current scope.
class SwallowStdout {
 public:
  SwallowStdout() : old_(std::cout.rdbuf(sink_.rdbuf())) {}
  ~SwallowStdout() { std::cout.rdbuf(old_); }

 private:
  std::ostringstream sink_;
  std::streambuf* old_;
};

void compileAndRun(const std::string& source) {
  using namespace congen;
  SwallowStdout quiet;
  try {
    interp::Interpreter::Options opts;
    opts.backend = interp::Backend::kVm;
    opts.vmStepLimit = 200000;  // fuel alias: IconError 810 bounds runaway chunks
    interp::Interpreter interp{opts};
    interp.load(source);  // compiles every body; runs top-level stmts
    auto gen = interp.call("main", {Value::list(ListImpl::create())});
    for (int n = 0; n < 1000 && gen->nextValue(); ++n) {
    }
  } catch (const frontend::SyntaxError&) {
  } catch (const IconError&) {
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  compileAndRun(std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}

// fuzz_driver_main.cpp — corpus regression driver for non-Clang builds.
//
// Without libFuzzer (GCC toolchains) the harnesses still build: this
// main() replays every file under the directories passed on the command
// line through LLVMFuzzerTestOneInput, so the corpus acts as a plain
// regression test (ctest label "fuzz") and the harness code itself can
// never bit-rot. With CONGEN_BUILD_FUZZERS=ON and Clang, libFuzzer's own
// driver replaces this translation unit entirely.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::size_t runFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "fuzz driver: cannot open " << path << "\n";
    std::exit(2);
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return bytes.size();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t files = 0;
  std::size_t bytes = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        bytes += runFile(entry.path());
        ++files;
      }
    } else {
      bytes += runFile(p);
      ++files;
    }
  }
  std::cout << "fuzz driver: replayed " << files << " corpus files (" << bytes << " bytes)\n";
  if (files == 0) {
    std::cerr << "fuzz driver: no corpus files found\n";
    return 2;
  }
  return 0;
}

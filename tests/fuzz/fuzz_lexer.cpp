// fuzz_lexer.cpp — libFuzzer harness for the Junicon scanner.
//
// Contract under test: tokenize() either returns a token stream or
// throws SyntaxError — on ANY byte sequence. Every other escape
// (crash, hang, UB caught by ASan, std::bad_alloc from a pathological
// literal, an unexpected exception type) is a finding. The seed corpus
// is the shipped example scripts plus the hand-written edge cases in
// tests/fuzz/corpus/.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "frontend/lexer.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view source(reinterpret_cast<const char*>(data), size);
  try {
    const auto tokens = congen::frontend::tokenize(source);
    (void)tokens;
  } catch (const congen::frontend::SyntaxError&) {
    // Rejecting malformed input is the lexer doing its job.
  }
  return 0;
}

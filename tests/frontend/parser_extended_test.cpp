// parser_extended_test.cpp — grammar for records, case, slices, null
// tests, and global declarations.
#include "frontend/parser.hpp"

#include <gtest/gtest.h>

namespace congen::frontend {
namespace {

std::string expr(const std::string& src) { return ast::dump(parseExpression(src)); }
std::string prog(const std::string& src) { return ast::dump(parseProgram(src)); }

TEST(ParseRecord, Declaration) {
  EXPECT_EQ(prog("record point(x, y)"), "(program (recdecl point (id x) (id y)))");
  EXPECT_EQ(prog("record empty()"), "(program (recdecl empty))");
  EXPECT_THROW(parseProgram("record (x)"), SyntaxError) << "missing type name";
}

TEST(ParseGlobal, Declaration) {
  EXPECT_EQ(prog("global a, b"), "(program (globals (id a) (id b)))");
}

TEST(ParseCase, BranchesAndDefault) {
  EXPECT_EQ(prog("case x of { 1: a; 2 | 3: b; default: c; }"),
            "(program (case (id x) "
            "(branch (int 1) (stmt (id a))) "
            "(branch (bin | (int 2) (int 3)) (stmt (id b))) "
            "(branch default (stmt (id c)))))");
}

TEST(ParseCase, RequiresOfAndBraces) {
  EXPECT_THROW(parseProgram("case x { 1: a; }"), SyntaxError);
  EXPECT_THROW(parseProgram("case x of 1: a;"), SyntaxError);
}

TEST(ParseSlice, PositionsForm) {
  EXPECT_EQ(expr("s[2:4]"), "(slice (id s) (int 2) (int 4))");
  EXPECT_EQ(expr("s[i:j][1]"), "(index (slice (id s) (id i) (id j)) (int 1))");
  EXPECT_EQ(expr("s[2]"), "(index (id s) (int 2))") << "plain subscript unaffected";
}

TEST(ParseNullTests, PrefixBackslashAndSlash) {
  EXPECT_EQ(expr("\\x"), "(un \\ (id x))");
  EXPECT_EQ(expr("/x"), "(un / (id x))");
  EXPECT_EQ(expr("/x := 1"), "(assign := (un / (id x)) (int 1))") << "the default idiom";
  EXPECT_EQ(expr("a / b"), "(bin / (id a) (id b))") << "infix division unaffected";
  EXPECT_EQ(expr("f() \\ 3"), "(limit (invoke (id f)) (int 3))") << "postfix limit unaffected";
  EXPECT_EQ(expr("\\a & /b"), "(bin & (un \\ (id a)) (un / (id b)))");
}

TEST(ParseRegression, NQueensCore) {
  EXPECT_NO_THROW(parseProgram(R"(
    global n, rows, ups, downs, solution
    def q(c) {
      local r;
      every r := 1 to n do {
        if /rows[r] & /ups[n + r - c] & /downs[r + c - 1] then {
          rows[r] := ups[n + r - c] := downs[r + c - 1] := 1;
          solution[c] := r;
          if c == n then suspend solution;
          else suspend q(c + 1);
          rows[r] := ups[n + r - c] := downs[r + c - 1] := &null;
        }
      }
    }
  )"));
}

}  // namespace
}  // namespace congen::frontend

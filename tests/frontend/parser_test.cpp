// parser_test.cpp — grammar shapes via s-expression dumps.
#include "frontend/parser.hpp"

#include <gtest/gtest.h>

namespace congen::frontend {
namespace {

std::string expr(const std::string& src) { return ast::dump(parseExpression(src)); }
std::string prog(const std::string& src) { return ast::dump(parseProgram(src)); }

TEST(ParsePrecedence, ConjunctionIsLoosest) {
  EXPECT_EQ(expr("a & b | c"), "(bin & (id a) (bin | (id b) (id c)))");
  EXPECT_EQ(expr("x := 1 & y := 2"), "(bin & (assign := (id x) (int 1)) (assign := (id y) (int 2)))");
}

TEST(ParsePrecedence, AssignmentBindsLooserThanToBy) {
  EXPECT_EQ(expr("i := 1 to 10"), "(assign := (id i) (toby (int 1) (int 10)))");
  EXPECT_EQ(expr("i := 1 to 10 by 2"), "(assign := (id i) (toby (int 1) (int 10) (int 2)))");
}

TEST(ParsePrecedence, ArithmeticTower) {
  EXPECT_EQ(expr("1 + 2 * 3"), "(bin + (int 1) (bin * (int 2) (int 3)))");
  EXPECT_EQ(expr("2 ^ 3 ^ 2"), "(bin ^ (int 2) (bin ^ (int 3) (int 2)))") << "^ right-assoc";
  EXPECT_EQ(expr("1 - 2 - 3"), "(bin - (bin - (int 1) (int 2)) (int 3))") << "- left-assoc";
  EXPECT_EQ(expr("a < b + 1"), "(bin < (id a) (bin + (id b) (int 1)))");
  EXPECT_EQ(expr("a || b + c"), "(bin || (id a) (bin + (id b) (id c)))");
}

TEST(ParsePrecedence, AlternationVsComparison) {
  EXPECT_EQ(expr("a | b < c"), "(bin | (id a) (bin < (id b) (id c)))");
}

TEST(ParseUnary, ConcurrencyOperators) {
  EXPECT_EQ(expr("<> e"), "(un <> (id e))");
  EXPECT_EQ(expr("|<> e"), "(un |<> (id e))");
  EXPECT_EQ(expr("|> e"), "(un |> (id e))");
  EXPECT_EQ(expr("@ c"), "(un @ (id c))");
  EXPECT_EQ(expr("! c"), "(un ! (id c))");
  EXPECT_EQ(expr("^ c"), "(un ^ (id c))");
  EXPECT_EQ(expr("create e"), "(un |<> (id e))") << "Unicon create = |<>";
  EXPECT_EQ(expr("|e"), "(un | (id e))") << "prefix | is repeated alternation";
}

TEST(ParseUnary, NestedPipesFromThePaper) {
  // x * ! |> factorial(! |> sqrt(y))   (Section III.B)
  EXPECT_EQ(expr("x * ! |> factorial(! |> sqrt(y))"),
            "(bin * (id x) (un ! (un |> (invoke (id factorial) "
            "(un ! (un |> (invoke (id sqrt) (id y))))))))");
}

TEST(ParsePostfix, InvocationIndexFieldChains) {
  EXPECT_EQ(expr("f(x, y)"), "(invoke (id f) (id x) (id y))");
  EXPECT_EQ(expr("f()"), "(invoke (id f))");
  EXPECT_EQ(expr("a[i]"), "(index (id a) (id i))");
  EXPECT_EQ(expr("o.f"), "(field f (id o))");
  EXPECT_EQ(expr("e(x).c[i]"), "(index (field c (invoke (id e) (id x))) (id i))")
      << "the primary chain of Section V.A";
}

TEST(ParsePostfix, NativeInvocation) {
  EXPECT_EQ(expr("this::hash(x)"), "(native hash (id this) (id x))");
  EXPECT_EQ(expr("line::split(s)"), "(native split (id line) (id s))");
}

TEST(ParsePostfix, LimitOperator) {
  EXPECT_EQ(expr("f() \\ 3"), "(limit (invoke (id f)) (int 3))");
}

TEST(ParseLiterals, ListsAndAmpKeywords) {
  EXPECT_EQ(expr("[]"), "(listlit)");
  EXPECT_EQ(expr("[1, 2, x]"), "(listlit (int 1) (int 2) (id x))");
  EXPECT_EQ(expr("&null"), "(null)");
  EXPECT_EQ(expr("&fail"), "(failexpr)");
}

TEST(ParseExprSeq, ParenthesizedSequence) {
  EXPECT_EQ(expr("(a; b; c)"), "(seq (id a) (id b) (id c))");
  EXPECT_EQ(expr("(a)"), "(id a)") << "plain parens are transparent";
}

TEST(ParseExprSeq, BraceExpression) {
  // `|> { local x; x }` — Fig. 4's pipe body.
  EXPECT_EQ(expr("{ local x; x }"), "(seq (decls (vardecl x)) (stmt (id x)))");
}

TEST(ParseAssign, FormsAndSugar) {
  EXPECT_EQ(expr("x := y"), "(assign := (id x) (id y))");
  EXPECT_EQ(expr("x = y"), "(assign := (id x) (id y))") << "Groovy-style = is assignment";
  EXPECT_EQ(expr("x +:= 1"), "(assign +:= (id x) (int 1))");
  EXPECT_EQ(expr("x :=: y"), "(swap :=: (id x) (id y))");
  EXPECT_EQ(expr("a := b := c"), "(assign := (id a) (assign := (id b) (id c)))")
      << "right-associative";
}

TEST(ParseStatements, Loops) {
  EXPECT_EQ(prog("every x := !l do f(x);"),
            "(program (every (assign := (id x) (un ! (id l))) (stmt (invoke (id f) (id x)))))");
  EXPECT_EQ(prog("while c do b;"), "(program (while (id c) (stmt (id b))))");
  EXPECT_EQ(prog("until c;"), "(program (until (id c)))");
  EXPECT_EQ(prog("repeat { break; }"), "(program (repeat (block (break))))");
}

TEST(ParseStatements, IfThenElseNesting) {
  EXPECT_EQ(prog("if a then b; else c;"),
            "(program (if (id a) (stmt (id b)) (stmt (id c))))");
  // Dangling else binds to the nearest if.
  EXPECT_EQ(prog("if a then if b then c; else d;"),
            "(program (if (id a) (if (id b) (stmt (id c)) (stmt (id d)))))");
}

TEST(ParseStatements, SuspendReturnFail) {
  EXPECT_EQ(prog("suspend 1 to 3;"), "(program (suspend (toby (int 1) (int 3))))");
  EXPECT_EQ(prog("suspend;"), "(program (suspend))");
  EXPECT_EQ(prog("return x;"), "(program (return (id x)))");
  EXPECT_EQ(prog("return;"), "(program (return))");
  EXPECT_EQ(prog("fail;"), "(program (fail))");
}

TEST(ParseDefs, BraceForm) {
  EXPECT_EQ(prog("def f(a, b) { return a + b; }"),
            "(program (def f (params (id a) (id b)) (block (return (bin + (id a) (id b))))))");
}

TEST(ParseDefs, ProcedureEndForm) {
  EXPECT_EQ(prog("procedure f(a); suspend a; end"),
            "(program (def f (params (id a)) (block (suspend (id a)))))");
}

TEST(ParseDefs, LocalDeclarationsWithInit) {
  EXPECT_EQ(prog("def f() { local a, b := 2; }"),
            "(program (def f (params) (block (decls (vardecl a) (vardecl b (int 2))))))");
}

TEST(ParseErrors, Diagnostics) {
  EXPECT_THROW(parseExpression("1 +"), SyntaxError);
  EXPECT_THROW(parseExpression("f("), SyntaxError);
  EXPECT_THROW(parseExpression("(a; b"), SyntaxError);
  EXPECT_THROW(parseExpression("1 2"), SyntaxError) << "trailing input rejected";
  EXPECT_THROW(parseProgram("def { }"), SyntaxError) << "missing procedure name";
  EXPECT_THROW(parseProgram("if a b"), SyntaxError) << "missing then";
  EXPECT_THROW(parseProgram("{ unclosed"), SyntaxError);
}

TEST(ParseRegression, Fig3PipelineExpression) {
  // The embedded expression of Fig. 3 parses cleanly.
  EXPECT_NO_THROW(parseExpression(
      "this::hashNumber( ! (|> this::wordToNumber( ! splitWords(readLines()))))"));
}

TEST(ParseRegression, Fig4MapReduceBody) {
  EXPECT_NO_THROW(parseProgram(R"(
    def mapReduce(f, s, r, i) {
      local c, t, tasks;
      tasks := [];
      every (c := chunk(<> s())) do {
        t := |> { local x; x := i; every (x := r(x, f(!c))); x };
        put(tasks, t);
      };
      suspend ! (! tasks);
    }
  )"));
}

}  // namespace
}  // namespace congen::frontend

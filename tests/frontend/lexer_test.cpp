// lexer_test.cpp — scanning the Junicon dialect.
#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

namespace congen::frontend {
namespace {

std::vector<std::string> opTexts(const std::string& src) {
  std::vector<std::string> out;
  for (const auto& t : tokenize(src)) {
    if (t.kind == TokKind::Op) out.push_back(t.text);
  }
  return out;
}

TEST(LexNumbers, IntegerRealRadix) {
  const auto toks = tokenize("42 3.14 1e9 2.5e-3 16r1F 36rhello");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokKind::IntLit);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].kind, TokKind::RealLit);
  EXPECT_EQ(toks[2].kind, TokKind::RealLit) << "exponent form without a dot";
  EXPECT_EQ(toks[3].kind, TokKind::RealLit);
  EXPECT_EQ(toks[4].kind, TokKind::IntLit);
  EXPECT_EQ(toks[4].text, "16r1F");
  EXPECT_EQ(toks[5].text, "36rhello");
}

TEST(LexNumbers, DotAfterIntIsNotReal) {
  // `1 to 3` style ranges: `x.y` needs a digit after the dot to be real.
  const auto toks = tokenize("v[1].f");
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[2].kind, TokKind::IntLit);
}

TEST(LexStrings, EscapesDecoded) {
  const auto toks = tokenize(R"("a\nb\t\"q\"" "regex \\s+")");
  EXPECT_EQ(toks[0].kind, TokKind::StrLit);
  EXPECT_EQ(toks[0].text, "a\nb\t\"q\"");
  EXPECT_EQ(toks[1].text, "regex \\s+") << "double backslash collapses";
}

TEST(LexStrings, UnterminatedThrows) {
  EXPECT_THROW(tokenize("\"open"), SyntaxError);
  EXPECT_THROW(tokenize("\"trailing\\"), SyntaxError);
}

TEST(LexOps, LongestMatchForConcurrencyOperators) {
  // |<> must not scan as | then <>; |> not as | then >.
  EXPECT_EQ(opTexts("|<> |> || |"), (std::vector<std::string>{"|<>", "|>", "||", "|"}));
  EXPECT_EQ(opTexts("<> <= <"), (std::vector<std::string>{"<>", "<=", "<"}));
  EXPECT_EQ(opTexts(":= :=: ::"), (std::vector<std::string>{":=", ":=:", "::"}));
  EXPECT_EQ(opTexts("~=== ~== ~="), (std::vector<std::string>{"~===", "~==", "~="}));
  EXPECT_EQ(opTexts("=== =="), (std::vector<std::string>{"===", "=="}));
  EXPECT_EQ(opTexts("+:= -:= *:= /:= %:= ^:= ||:="),
            (std::vector<std::string>{"+:=", "-:=", "*:=", "/:=", "%:=", "^:=", "||:="}));
}

TEST(LexKeywords, RecognizedSet) {
  for (const char* kw : {"def", "procedure", "every", "while", "until", "repeat", "if", "then",
                         "else", "suspend", "return", "fail", "break", "next", "do", "to", "by",
                         "not", "create", "local", "var", "end"}) {
    const auto toks = tokenize(kw);
    EXPECT_EQ(toks[0].kind, TokKind::Keyword) << kw;
  }
  EXPECT_EQ(tokenize("definition")[0].kind, TokKind::Ident) << "prefix of a keyword is an ident";
}

TEST(LexKeywords, AmpKeywords) {
  const auto toks = tokenize("&null &fail x & y");
  EXPECT_EQ(toks[0].kind, TokKind::AmpKeyword);
  EXPECT_EQ(toks[0].text, "&null");
  EXPECT_EQ(toks[1].text, "&fail");
  EXPECT_EQ(toks[3].kind, TokKind::Op) << "bare & is the product operator";
}

TEST(LexComments, HashToEndOfLine) {
  const auto toks = tokenize("x # comment with \"stuff\" := ;\ny");
  ASSERT_EQ(toks.size(), 3u);  // x, y, End
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
}

TEST(LexPositions, LineAndColumnTracking) {
  const auto toks = tokenize("a\n  bb\n    c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 5);
}

TEST(LexErrors, UnexpectedCharacter) {
  EXPECT_THROW(tokenize("a $ b"), SyntaxError);
}

TEST(LexEnd, AlwaysTerminated) {
  EXPECT_EQ(tokenize("").back().kind, TokKind::End);
  EXPECT_EQ(tokenize("x").back().kind, TokKind::End);
}

}  // namespace
}  // namespace congen::frontend
